(* Multi-domain stress + invariant-check harness. See bw_stress.mli for
   the invariant catalogue; the implementation notes here cover the
   synchronization structure.

   Workers own disjoint key stripes, so every key has a single writer and
   per-thread journals admit an exact sequential oracle. A phase barrier
   (Runner.Phaser) parks all workers and churners; the controller then
   replays journals, sweeps the key space, flushes the epoch system and
   audits the mapping table while nothing else runs — the only
   cross-domain accesses to worker state happen across the phaser's
   atomics, which order them. *)

module Growable = Bw_util.Growable
module Rng = Bw_util.Rng
module Runner = Harness.Runner
module MT = Mapping_table

type mix = {
  w_insert : int;
  w_read : int;
  w_update : int;
  w_remove : int;
  w_scan : int;
}

let default_mix =
  { w_insert = 30; w_read = 40; w_update = 15; w_remove = 10; w_scan = 5 }

type config = {
  domains : int;
  keys_per_domain : int;
  ops_per_phase : int;
  phases : int;
  time_budget_s : float option;
  mix : mix;
  scan_len : int;
  seed : int;
  churn_domains : int;
  churn_ops_per_phase : int;
  drive_advance : bool;
  batch : int;
  verbose : bool;
}

let short_config =
  {
    domains = 4;
    keys_per_domain = 192;
    ops_per_phase = 400;
    phases = 3;
    time_budget_s = None;
    mix = default_mix;
    scan_len = 16;
    seed = 42;
    churn_domains = 2;
    churn_ops_per_phase = 3_000;
    drive_advance = true;
    batch = 1;
    verbose = false;
  }

(* Point operations as data, so workers can either execute them directly
   or buffer [config.batch] of them and hand the run to the subject's
   batch path. Scans never batch: they flush and run per-op. *)
type batch_op =
  | Sb_insert of int * int
  | Sb_lookup of int
  | Sb_update of int * int
  | Sb_remove of int * int

type batch_res = Sb_applied of bool | Sb_values of int list

type subject = {
  s_name : string;
  s_unique : bool;
  s_insert : tid:int -> int -> int -> bool;
  s_lookup : tid:int -> int -> int list;
  s_update : tid:int -> int -> int -> bool;
  s_remove : tid:int -> int -> int -> bool;
  s_scan : tid:int -> int -> int -> int;
  s_batch : (tid:int -> batch_op array -> batch_res array) option;
  s_quiesce : tid:int -> unit;
  s_start_aux : unit -> unit;
  s_stop_aux : unit -> unit;
  s_obs : Bw_obs.sink;
  s_epoch : Epoch.t option;
  s_verify : (unit -> unit) option;
  s_max_chains : (unit -> int * int) option;
  s_chain_bound : int option;
}

(* --- subjects --- *)

let bwtree_subject ?(config = Bwtree.default_config) ?(obs = Bw_obs.Null)
    ~domains () =
  let config =
    if config.Bwtree.max_threads < domains + 1 then
      { config with Bwtree.max_threads = domains + 1 }
    else config
  in
  let module B = Harness.Drivers.Bw_int in
  let t = B.create ~config ~obs () in
  {
    s_name = "OpenBw-Tree";
    s_unique = config.Bwtree.unique_keys;
    s_insert = (fun ~tid k v -> B.insert t ~tid k v);
    s_lookup = (fun ~tid k -> B.lookup t ~tid k);
    s_update = (fun ~tid k v -> B.update t ~tid k v);
    s_remove = (fun ~tid k v -> B.delete t ~tid k v);
    s_scan = (fun ~tid k n -> List.length (B.scan t ~tid ~n k));
    s_batch =
      Some
        (fun ~tid ops ->
          let bops =
            Bw_util.Arr.map
              (function
                | Sb_insert (k, v) -> (k, B.B_insert v)
                | Sb_lookup k -> (k, B.B_get)
                | Sb_update (k, v) -> (k, B.B_update v)
                | Sb_remove (k, v) -> (k, B.B_delete v))
              ops
          in
          Bw_util.Arr.map
            (function
              | B.R_applied b -> Sb_applied b
              | B.R_values vs -> Sb_values vs)
            (B.execute_batch t ~tid bops));
    s_quiesce = (fun ~tid -> B.quiesce t ~tid);
    s_start_aux = (fun () -> B.start_gc_thread t ());
    s_stop_aux = (fun () -> B.stop_gc_thread t);
    s_obs = obs;
    s_epoch = Some (B.epoch t);
    s_verify = Some (fun () -> B.verify_invariants t);
    s_max_chains = Some (fun () -> B.max_chains t);
    (* Consolidation is lazy: a chain can overshoot its threshold by the
       appends that race in before the next traversal consolidates, so a
       quiesced barrier tolerates threshold + a margin per concurrent
       appender. *)
    s_chain_bound =
      Some
        (max config.Bwtree.leaf_chain_max config.Bwtree.inner_chain_max
        + (2 * (domains + 1))
        + 8);
  }

let of_driver (d : int Runner.driver) =
  {
    s_name = d.Runner.name;
    s_unique = true;
    s_insert = (fun ~tid k v -> d.Runner.insert ~tid k v);
    s_lookup =
      (fun ~tid k ->
        match d.Runner.read ~tid k with None -> [] | Some v -> [ v ]);
    s_update = (fun ~tid k v -> d.Runner.update ~tid k v);
    s_remove = (fun ~tid k _v -> d.Runner.remove ~tid k);
    s_scan = (fun ~tid k n -> d.Runner.scan ~tid k ~n (fun _ _ -> ()));
    (* Index_iface.exec_batch falls back to per-op application when the
       driver has no native batch path, so every driver gets coverage.
       The unique-key subject drops the remove value, same as s_remove. *)
    s_batch =
      Some
        (fun ~tid ops ->
          let bops =
            Bw_util.Arr.map
              (function
                | Sb_insert (k, v) -> Index_iface.Bop_insert (k, v)
                | Sb_lookup k -> Index_iface.Bop_read k
                | Sb_update (k, v) -> Index_iface.Bop_update (k, v)
                | Sb_remove (k, _v) -> Index_iface.Bop_remove k)
              ops
          in
          Bw_util.Arr.map
            (function
              | Index_iface.Bres_applied b -> Sb_applied b
              | Index_iface.Bres_value o -> Sb_values (Option.to_list o)
              | Index_iface.Bres_bad_key -> Sb_applied false)
            (Index_iface.exec_batch d ~tid bops));
    s_quiesce = (fun ~tid -> d.Runner.thread_done ~tid);
    s_start_aux = d.Runner.start_aux;
    s_stop_aux = d.Runner.stop_aux;
    s_obs = Bw_obs.Null;
    s_epoch = None;
    s_verify = None;
    s_max_chains = None;
    s_chain_bound = None;
  }

(* --- journals --- *)

(* Every value encodes the key it was written under in its high bits, so
   cross-stripe reads can be checked for provenance without access to the
   owner's oracle. *)
let value_bits = 20
let value_of k seq = (k lsl value_bits) lor (seq land ((1 lsl value_bits) - 1))

type entry =
  | E_insert of int * int * bool
  | E_remove of int * int * bool
  | E_update of int * int * bool
  | E_lookup of int * int list
  | E_scan of int * int * int  (* start key, limit, visited *)

type worker_state = {
  wid : int;
  rng : Rng.t;
  journal : entry Growable.t;
  (* the worker's private view of its stripe, used only to pick plausible
     remove/update targets; the independent check is the oracle replay *)
  mine : (int, int list) Hashtbl.t;
  oracle : (int, int list) Hashtbl.t;  (* controller-side, replay state *)
  mutable seq : int;
}

type churn_state = {
  cid : int;
  c_rng : Rng.t;
  c_live : (int * int) Growable.t;
  mutable c_seq : int;
  mutable c_ops : int;
}

type report = {
  r_ops : int;
  r_churn_ops : int;
  r_phases : int;
  r_checks : int;
  r_violations : string list;
  r_seconds : float;
  r_epoch : Epoch.stats option;
}

let max_reported_violations = 50

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d phases, %d index ops, %d churn ops in %.2fs@,%d checks, %d violation(s)"
    r.r_phases r.r_ops r.r_churn_ops r.r_seconds r.r_checks
    (List.length r.r_violations);
  List.iter (fun v -> Format.fprintf ppf "@,  %s" v) r.r_violations;
  (match r.r_epoch with
  | Some s ->
      Format.fprintf ppf "@,epoch: retired %d, reclaimed %d, advanced %d"
        s.Epoch.retired s.Epoch.reclaimed s.Epoch.epochs_advanced
  | None -> ());
  Format.fprintf ppf "@]"

let rec remove_one v = function
  | [] -> []
  | x :: rest -> if x = v then rest else x :: remove_one v rest

let run cfg s =
  if cfg.domains < 1 then invalid_arg "Bw_stress.run: domains < 1";
  if cfg.batch < 1 then invalid_arg "Bw_stress.run: batch < 1";
  let mix =
    (* non-unique update semantics (replace the first visible duplicate)
       have no clean sequential model; fold that weight into inserts *)
    if s.s_unique then cfg.mix
    else
      {
        cfg.mix with
        w_insert = cfg.mix.w_insert + cfg.mix.w_update;
        w_update = 0;
      }
  in
  let total_weight =
    mix.w_insert + mix.w_read + mix.w_update + mix.w_remove + mix.w_scan
  in
  if total_weight <= 0 then invalid_arg "Bw_stress.run: empty mix";
  let keyspace = cfg.domains * cfg.keys_per_domain in
  let checker_tid = cfg.domains in
  (* violation sink, shared by all domains *)
  let vmutex = Mutex.create () in
  let violations = ref [] in
  let n_violations = ref 0 in
  let checks = Atomic.make 0 in
  let record cond msg =
    Atomic.incr checks;
    if not cond then begin
      Mutex.lock vmutex;
      incr n_violations;
      if !n_violations <= max_reported_violations then
        violations := msg () :: !violations;
      Mutex.unlock vmutex
    end
  in
  let workers =
    Array.init cfg.domains (fun wid ->
        {
          wid;
          rng = Rng.create ~seed:(Int64.of_int (cfg.seed + (wid * 7919)));
          journal = Growable.create ();
          mine = Hashtbl.create 256;
          oracle = Hashtbl.create 256;
          seq = 0;
        })
  in
  let table = MT.create ~chunk_bits:10 ~dir_bits:10 ~dummy:(-1) () in
  let churn_live_cap = 512 in
  let churners =
    Array.init cfg.churn_domains (fun cid ->
        {
          cid;
          c_rng = Rng.create ~seed:(Int64.of_int (cfg.seed + 104729 + cid));
          c_live = Growable.create ();
          c_seq = 0;
          c_ops = 0;
        })
  in
  let phaser = Runner.Phaser.create (cfg.domains + cfg.churn_domains) in
  let stop_flag = Atomic.make false in
  let t0 = Unix.gettimeofday () in

  (* --- worker op generation --- *)
  let find_or_empty tbl k = try Hashtbl.find tbl k with Not_found -> [] in
  let use_batch = cfg.batch > 1 && s.s_batch <> None in
  (* Journal an executed point op and update the worker's private view;
     shared by the direct path and the batch flush, so batched results
     land in the journal in submission order — exactly what the oracle
     replay expects. *)
  let note (st : worker_state) op res =
    match (op, res) with
    | Sb_insert (k, v), Sb_applied r ->
        Growable.push st.journal (E_insert (k, v, r));
        if r then
          Hashtbl.replace st.mine k
            (if s.s_unique then [ v ] else v :: find_or_empty st.mine k)
    | Sb_lookup k, Sb_values vs -> Growable.push st.journal (E_lookup (k, vs))
    | Sb_update (k, v), Sb_applied r ->
        Growable.push st.journal (E_update (k, v, r));
        if r then Hashtbl.replace st.mine k [ v ]
    | Sb_remove (k, v), Sb_applied r ->
        Growable.push st.journal (E_remove (k, v, r));
        if r then
          if s.s_unique then Hashtbl.remove st.mine k
          else (
            match remove_one v (find_or_empty st.mine k) with
            | [] -> Hashtbl.remove st.mine k
            | l -> Hashtbl.replace st.mine k l)
    | (Sb_insert _ | Sb_update _ | Sb_remove _), Sb_values _
    | Sb_lookup _, Sb_applied _ ->
        record false (fun () ->
            Printf.sprintf "[worker %d] batch result has the wrong shape"
              st.wid)
  in
  let exec_one (st : worker_state) ~submit ~scan =
    let own_key () =
      (st.wid * cfg.keys_per_domain) + Rng.next_int st.rng cfg.keys_per_domain
    in
    let any_key () = Rng.next_int st.rng keyspace in
    let fresh st k =
      st.seq <- st.seq + 1;
      value_of k st.seq
    in
    let x = Rng.next_int st.rng total_weight in
    if x < mix.w_insert then begin
      let k = own_key () in
      submit (Sb_insert (k, fresh st k))
    end
    else if x < mix.w_insert + mix.w_read then submit (Sb_lookup (any_key ()))
    else if x < mix.w_insert + mix.w_read + mix.w_update then begin
      let k = own_key () in
      submit (Sb_update (k, fresh st k))
    end
    else if x < mix.w_insert + mix.w_read + mix.w_update + mix.w_remove
    then begin
      let k = own_key () in
      (* in non-unique mode remove needs an exact live pair to have a
         chance of succeeding; fall back to a never-inserted value.
         [mine] may lag behind ops still buffered for the next batch
         flush — that only lowers the hit rate, the oracle replays
         whatever actually happened *)
      let v =
        match find_or_empty st.mine k with
        | v :: _ -> v
        | [] -> value_of k 0
      in
      submit (Sb_remove (k, v))
    end
    else scan (any_key ())
  in

  let worker_loop wid =
    let st = workers.(wid) in
    let tid = wid in
    let direct op =
      let res =
        match op with
        | Sb_insert (k, v) -> Sb_applied (s.s_insert ~tid k v)
        | Sb_lookup k -> Sb_values (s.s_lookup ~tid k)
        | Sb_update (k, v) -> Sb_applied (s.s_update ~tid k v)
        | Sb_remove (k, v) -> Sb_applied (s.s_remove ~tid k v)
      in
      note st op res
    in
    let run_batch =
      match s.s_batch with Some f -> f | None -> fun ~tid:_ _ -> [||]
    in
    let pend = Growable.create () in
    let flush () =
      let n = Growable.length pend in
      if n > 0 then begin
        let ops = Bw_util.Arr.init n (Growable.get pend) in
        let res = run_batch ~tid ops in
        if Array.length res = n then
          Array.iteri (fun i op -> note st op res.(i)) ops
        else
          record false (fun () ->
              Printf.sprintf
                "[worker %d] batch of %d ops returned %d results" st.wid n
                (Array.length res));
        (* keep the backing storage across flushes *)
        Growable.reset pend
      end
    in
    let submit op =
      if use_batch then begin
        Growable.push pend op;
        if Growable.length pend >= cfg.batch then flush ()
      end
      else direct op
    in
    let scan k =
      (* scans have no batch form: order them after the pending ops *)
      if use_batch then flush ();
      Growable.push st.journal
        (E_scan (k, cfg.scan_len, s.s_scan ~tid k cfg.scan_len))
    in
    let continue = ref true in
    while !continue do
      for _ = 1 to cfg.ops_per_phase do
        exec_one st ~submit ~scan
      done;
      if use_batch then flush ();
      s.s_quiesce ~tid:wid;
      Runner.Phaser.await phaser;
      if Atomic.get stop_flag then continue := false
    done
  in

  (* --- mapping-table churn --- *)
  let churn_loop cid =
    let st = churners.(cid) in
    let continue = ref true in
    while !continue do
      for _ = 1 to cfg.churn_ops_per_phase do
        st.c_ops <- st.c_ops + 1;
        let len = Growable.length st.c_live in
        if len > 0 && (len >= churn_live_cap || Rng.next_bool st.c_rng)
        then begin
          let i = Rng.next_int st.c_rng len in
          let id, v = Growable.get st.c_live i in
          Growable.set st.c_live i (Growable.get st.c_live (len - 1));
          Growable.truncate st.c_live (len - 1);
          (* no other domain may touch an id we own: a mismatch here means
             a racing free_id stomped a live cell *)
          record
            (MT.get table id = v)
            (fun () ->
              Printf.sprintf "[churn %d] live id %d reads %d, expected %d"
                cid id (MT.get table id) v);
          MT.free_id table id
        end
        else begin
          st.c_seq <- st.c_seq + 1;
          let v = (cid lsl 40) lor st.c_seq in
          let id = MT.allocate table v in
          record
            (MT.get table id = v)
            (fun () ->
              Printf.sprintf
                "[churn %d] allocate %d installed %d but reads %d" cid id v
                (MT.get table id));
          Growable.push st.c_live (id, v)
        end
      done;
      Runner.Phaser.await phaser;
      if Atomic.get stop_flag then continue := false
    done
  in

  (* --- controller-side checks, run while everyone is parked --- *)
  let replay ~phase (st : worker_state) =
    let ctx op = Printf.sprintf "[phase %d][worker %d] %s" phase st.wid op in
    let o = st.oracle in
    Growable.iter
      (fun e ->
        match e with
        | E_insert (k, v, r) ->
            let cur = find_or_empty o k in
            let expected =
              if s.s_unique then cur = [] else not (List.mem v cur)
            in
            record (r = expected) (fun () ->
                ctx
                  (Printf.sprintf "insert(%d,%d) returned %b, oracle says %b"
                     k v r expected));
            if r then
              Hashtbl.replace o k (if s.s_unique then [ v ] else v :: cur)
        | E_remove (k, v, r) ->
            let cur = find_or_empty o k in
            let expected =
              if s.s_unique then cur <> [] else List.mem v cur
            in
            record (r = expected) (fun () ->
                ctx
                  (Printf.sprintf "remove(%d,%d) returned %b, oracle says %b"
                     k v r expected));
            if r then
              if s.s_unique then Hashtbl.remove o k
              else (
                match remove_one v cur with
                | [] -> Hashtbl.remove o k
                | l -> Hashtbl.replace o k l)
        | E_update (k, v, r) ->
            let cur = find_or_empty o k in
            record
              (r = (cur <> []))
              (fun () ->
                ctx
                  (Printf.sprintf "update(%d,%d) returned %b, oracle says %b"
                     k v r (cur <> [])));
            if r then Hashtbl.replace o k [ v ]
        | E_lookup (k, vs) ->
            if k / cfg.keys_per_domain = st.wid then
              let expected = List.sort compare (find_or_empty o k) in
              record
                (List.sort compare vs = expected)
                (fun () ->
                  ctx
                    (Printf.sprintf
                       "lookup(%d) saw [%s], oracle says [%s]" k
                       (String.concat ";" (List.map string_of_int vs))
                       (String.concat ";"
                          (List.map string_of_int expected))))
            else begin
              record
                (List.for_all (fun v -> v lsr value_bits = k) vs)
                (fun () ->
                  ctx
                    (Printf.sprintf
                       "lookup(%d) returned a value of another key" k));
              if s.s_unique then
                record
                  (List.length vs <= 1)
                  (fun () ->
                    ctx
                      (Printf.sprintf "lookup(%d) saw %d values on a unique \
                                       index" k (List.length vs)))
            end
        | E_scan (k, n, c) ->
            record
              (c >= 0 && c <= n)
              (fun () ->
                ctx (Printf.sprintf "scan(%d,%d) visited %d items" k n c)))
      st.journal;
    Growable.clear st.journal
  in

  let sweep ~phase =
    for k = 0 to keyspace - 1 do
      let vs = List.sort compare (s.s_lookup ~tid:checker_tid k) in
      let owner = workers.(k / cfg.keys_per_domain) in
      let expected = List.sort compare (find_or_empty owner.oracle k) in
      record (vs = expected) (fun () ->
          Printf.sprintf
            "[phase %d] sweep: key %d holds [%s] but oracle says [%s]" phase
            k
            (String.concat ";" (List.map string_of_int vs))
            (String.concat ";" (List.map string_of_int expected)))
    done
  in

  let check_epoch ~phase =
    match s.s_epoch with
    | None -> ()
    | Some e ->
        for tid = 0 to checker_tid do
          s.s_quiesce ~tid
        done;
        Epoch.flush e;
        record
          (Epoch.pending e = 0)
          (fun () ->
            Printf.sprintf
              "[phase %d] epoch: %d objects still pending after quiesce + \
               flush" phase (Epoch.pending e));
        (* The observability gauge must agree with the direct probe: a
           quiesced, flushed tree reports zero pending garbage. *)
        (match s.s_obs with
        | Bw_obs.Null -> ()
        | Bw_obs.To reg ->
            let sn = Bw_obs.snapshot reg in
            let g =
              try List.assoc Bw_obs.G_epoch_pending sn.Bw_obs.sn_gauges
              with Not_found -> 0
            in
            record (g = 0) (fun () ->
                Printf.sprintf
                  "[phase %d] obs: pending-garbage gauge reads %d after \
                   quiesce + flush" phase g))
  in

  let check_structure ~phase =
    (match (s.s_max_chains, s.s_chain_bound) with
    | Some probe, Some bound ->
        let leaf, inner = probe () in
        record (leaf <= bound) (fun () ->
            Printf.sprintf "[phase %d] leaf delta chain %d exceeds bound %d"
              phase leaf bound);
        record (inner <= bound) (fun () ->
            Printf.sprintf "[phase %d] inner delta chain %d exceeds bound %d"
              phase inner bound)
    | _ -> ());
    match s.s_verify with
    | None -> ()
    | Some verify ->
        record
          (try
             verify ();
             true
           with _ -> false)
          (fun () ->
            Printf.sprintf "[phase %d] structural verify failed: %s" phase
              (try
                 verify ();
                 "?"
               with exn -> Printexc.to_string exn))
  in

  let check_table ~phase =
    if cfg.churn_domains > 0 then begin
      let seen = Hashtbl.create 1024 in
      let live = ref 0 in
      Array.iter
        (fun st ->
          Growable.iter
            (fun (id, v) ->
              incr live;
              record
                (not (Hashtbl.mem seen id))
                (fun () ->
                  Printf.sprintf "[phase %d] table: id %d live twice" phase id);
              Hashtbl.replace seen id ();
              record (MT.get table id = v) (fun () ->
                  Printf.sprintf
                    "[phase %d] table: live id %d reads %d, expected %d"
                    phase id (MT.get table id) v))
            st.c_live)
        churners;
      let free = MT.free_list_length table and hw = MT.high_water table in
      record
        (!live + free = hw)
        (fun () ->
          Printf.sprintf
            "[phase %d] table accounting: %d live + %d free <> high water %d"
            phase !live free hw)
    end
  in

  (* --- spin everything up --- *)
  s.s_start_aux ();
  let advancer_stop = Atomic.make false in
  let advancer =
    match (cfg.drive_advance, s.s_epoch) with
    | true, Some e ->
        Some
          (Domain.spawn (fun () ->
               while not (Atomic.get advancer_stop) do
                 Epoch.advance e;
                 Unix.sleepf 0.0002
               done))
    | _ -> None
  in
  let worker_domains =
    Array.init cfg.domains (fun wid -> Domain.spawn (fun () -> worker_loop wid))
  in
  let churn_domains =
    Array.init cfg.churn_domains (fun cid ->
        Domain.spawn (fun () -> churn_loop cid))
  in
  let phases_done = ref 0 in
  let finished = ref false in
  while not !finished do
    Runner.Phaser.wait_all phaser;
    let phase = !phases_done + 1 in
    Array.iter (fun st -> replay ~phase st) workers;
    sweep ~phase;
    check_epoch ~phase;
    check_structure ~phase;
    check_table ~phase;
    phases_done := phase;
    if cfg.verbose then
      Printf.printf
        "phase %3d | %7d ops | %7d checks | %d violation(s) | %.1fs\n%!"
        phase
        (phase * cfg.ops_per_phase * cfg.domains)
        (Atomic.get checks) !n_violations
        (Unix.gettimeofday () -. t0);
    let stop =
      match cfg.time_budget_s with
      | Some budget -> Unix.gettimeofday () -. t0 >= budget
      | None -> phase >= cfg.phases
    in
    if stop then begin
      Atomic.set stop_flag true;
      finished := true
    end;
    Runner.Phaser.release phaser
  done;
  Array.iter Domain.join worker_domains;
  Array.iter Domain.join churn_domains;
  (match advancer with
  | Some d ->
      Atomic.set advancer_stop true;
      Domain.join d
  | None -> ());
  s.s_stop_aux ();
  {
    r_ops = !phases_done * cfg.ops_per_phase * cfg.domains;
    r_churn_ops = Array.fold_left (fun acc st -> acc + st.c_ops) 0 churners;
    r_phases = !phases_done;
    r_checks = Atomic.get checks;
    r_violations = List.rev !violations;
    r_seconds = Unix.gettimeofday () -. t0;
    r_epoch = Option.map Epoch.stats s.s_epoch;
  }
