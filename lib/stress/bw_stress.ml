(* Multi-domain stress + invariant-check harness. See bw_stress.mli for
   the invariant catalogue; the implementation notes here cover the
   synchronization structure.

   Workers own disjoint key stripes, so every key has a single writer and
   per-thread journals admit an exact sequential oracle. A phase barrier
   (Runner.Phaser) parks all workers and churners; the controller then
   replays journals, sweeps the key space, flushes the epoch system and
   audits the mapping table while nothing else runs — the only
   cross-domain accesses to worker state happen across the phaser's
   atomics, which order them. *)

module Growable = Bw_util.Growable
module Rng = Bw_util.Rng
module Runner = Harness.Runner
module MT = Mapping_table

type mix = {
  w_insert : int;
  w_read : int;
  w_update : int;
  w_remove : int;
  w_scan : int;
}

let default_mix =
  { w_insert = 30; w_read = 40; w_update = 15; w_remove = 10; w_scan = 5 }

type config = {
  domains : int;
  keys_per_domain : int;
  ops_per_phase : int;
  phases : int;
  time_budget_s : float option;
  mix : mix;
  scan_len : int;
  seed : int;
  churn_domains : int;
  churn_ops_per_phase : int;
  drive_advance : bool;
  batch : int;
  verbose : bool;
}

let short_config =
  {
    domains = 4;
    keys_per_domain = 192;
    ops_per_phase = 400;
    phases = 3;
    time_budget_s = None;
    mix = default_mix;
    scan_len = 16;
    seed = 42;
    churn_domains = 2;
    churn_ops_per_phase = 3_000;
    drive_advance = true;
    batch = 1;
    verbose = false;
  }

(* Point operations as data, so workers can either execute them directly
   or buffer [config.batch] of them and hand the run to the subject's
   batch path. Scans never batch: they flush and run per-op. *)
type batch_op =
  | Sb_insert of int * int
  | Sb_lookup of int
  | Sb_update of int * int
  | Sb_remove of int * int

type batch_res = Sb_applied of bool | Sb_values of int list

type subject = {
  s_name : string;
  s_unique : bool;
  s_insert : tid:int -> int -> int -> bool;
  s_lookup : tid:int -> int -> int list;
  s_update : tid:int -> int -> int -> bool;
  s_remove : tid:int -> int -> int -> bool;
  s_scan : tid:int -> int -> int -> int;
  s_batch : (tid:int -> batch_op array -> batch_res array) option;
  s_quiesce : tid:int -> unit;
  s_start_aux : unit -> unit;
  s_stop_aux : unit -> unit;
  s_obs : Bw_obs.sink;
  s_epoch : Epoch.t option;
  s_verify : (unit -> unit) option;
  s_max_chains : (unit -> int * int) option;
  s_chain_bound : int option;
  s_cache_check : (tid:int -> int -> bool) option;
  s_cache_stats : (unit -> Bwtree.leaf_cache_stats) option;
}

(* --- subjects --- *)

let bwtree_subject ?(config = Bwtree.default_config) ?(obs = Bw_obs.Null)
    ~domains () =
  let config =
    if config.Bwtree.max_threads < domains + 1 then
      { config with Bwtree.max_threads = domains + 1 }
    else config
  in
  let module B = Harness.Drivers.Bw_int in
  let t = B.create ~config ~obs () in
  {
    s_name = "OpenBw-Tree";
    s_unique = config.Bwtree.unique_keys;
    s_insert = (fun ~tid k v -> B.insert t ~tid k v);
    s_lookup = (fun ~tid k -> B.lookup t ~tid k);
    s_update = (fun ~tid k v -> B.update t ~tid k v);
    s_remove = (fun ~tid k v -> B.delete t ~tid k v);
    s_scan = (fun ~tid k n -> List.length (B.scan t ~tid ~n k));
    s_batch =
      Some
        (fun ~tid ops ->
          let bops =
            Bw_util.Arr.map
              (function
                | Sb_insert (k, v) -> (k, B.B_insert v)
                | Sb_lookup k -> (k, B.B_get)
                | Sb_update (k, v) -> (k, B.B_update v)
                | Sb_remove (k, v) -> (k, B.B_delete v))
              ops
          in
          Bw_util.Arr.map
            (function
              | B.R_applied b -> Sb_applied b
              | B.R_values vs -> Sb_values vs)
            (B.execute_batch t ~tid bops));
    s_quiesce = (fun ~tid -> B.quiesce t ~tid);
    s_start_aux = (fun () -> B.start_gc_thread t ());
    s_stop_aux = (fun () -> B.stop_gc_thread t);
    s_obs = obs;
    s_epoch = Some (B.epoch t);
    s_verify = Some (fun () -> B.verify_invariants t);
    s_max_chains = Some (fun () -> B.max_chains t);
    (* Consolidation is lazy: a chain can overshoot its threshold by the
       appends that race in before the next traversal consolidates, so a
       quiesced barrier tolerates threshold + a margin per concurrent
       appender. *)
    s_chain_bound =
      Some
        (max config.Bwtree.leaf_chain_max config.Bwtree.inner_chain_max
        + (2 * (domains + 1))
        + 8);
    s_cache_check = Some (fun ~tid k -> B.leaf_cache_check t ~tid k);
    s_cache_stats = Some (fun () -> B.leaf_cache_stats t);
  }

let of_driver (d : int Runner.driver) =
  {
    s_name = d.Runner.name;
    s_unique = true;
    s_insert = (fun ~tid k v -> d.Runner.insert ~tid k v);
    s_lookup =
      (fun ~tid k ->
        match d.Runner.read ~tid k with None -> [] | Some v -> [ v ]);
    s_update = (fun ~tid k v -> d.Runner.update ~tid k v);
    s_remove = (fun ~tid k _v -> d.Runner.remove ~tid k);
    s_scan = (fun ~tid k n -> d.Runner.scan ~tid k ~n (fun _ _ -> ()));
    (* Index_iface.exec_batch falls back to per-op application when the
       driver has no native batch path, so every driver gets coverage.
       The unique-key subject drops the remove value, same as s_remove. *)
    s_batch =
      Some
        (fun ~tid ops ->
          let bops =
            Bw_util.Arr.map
              (function
                | Sb_insert (k, v) -> Index_iface.Bop_insert (k, v)
                | Sb_lookup k -> Index_iface.Bop_read k
                | Sb_update (k, v) -> Index_iface.Bop_update (k, v)
                | Sb_remove (k, _v) -> Index_iface.Bop_remove k)
              ops
          in
          Bw_util.Arr.map
            (function
              | Index_iface.Bres_applied b -> Sb_applied b
              | Index_iface.Bres_value o -> Sb_values (Option.to_list o)
              | Index_iface.Bres_bad_key -> Sb_applied false)
            (Index_iface.exec_batch d ~tid bops));
    s_quiesce = (fun ~tid -> d.Runner.thread_done ~tid);
    s_start_aux = d.Runner.start_aux;
    s_stop_aux = d.Runner.stop_aux;
    s_obs = Bw_obs.Null;
    s_epoch = None;
    s_verify = None;
    s_max_chains = None;
    s_chain_bound = None;
    s_cache_check = None;
    s_cache_stats = None;
  }

(* --- journals --- *)

(* Every value encodes the key it was written under in its high bits, so
   cross-stripe reads can be checked for provenance without access to the
   owner's oracle. *)
let value_bits = 20
let value_of k seq = (k lsl value_bits) lor (seq land ((1 lsl value_bits) - 1))

type entry =
  | E_insert of int * int * bool
  | E_remove of int * int * bool
  | E_update of int * int * bool
  | E_lookup of int * int list
  | E_scan of int * int * int  (* start key, limit, visited *)

type worker_state = {
  wid : int;
  rng : Rng.t;
  journal : entry Growable.t;
  (* the worker's private view of its stripe, used only to pick plausible
     remove/update targets; the independent check is the oracle replay *)
  mine : (int, int list) Hashtbl.t;
  oracle : (int, int list) Hashtbl.t;  (* controller-side, replay state *)
  mutable seq : int;
}

type churn_state = {
  cid : int;
  c_rng : Rng.t;
  c_live : (int * int) Growable.t;
  mutable c_seq : int;
  mutable c_ops : int;
}

type report = {
  r_ops : int;
  r_churn_ops : int;
  r_phases : int;
  r_checks : int;
  r_violations : string list;
  r_seconds : float;
  r_epoch : Epoch.stats option;
}

let max_reported_violations = 50

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d phases, %d index ops, %d churn ops in %.2fs@,%d checks, %d violation(s)"
    r.r_phases r.r_ops r.r_churn_ops r.r_seconds r.r_checks
    (List.length r.r_violations);
  List.iter (fun v -> Format.fprintf ppf "@,  %s" v) r.r_violations;
  (match r.r_epoch with
  | Some s ->
      Format.fprintf ppf "@,epoch: retired %d, reclaimed %d, advanced %d"
        s.Epoch.retired s.Epoch.reclaimed s.Epoch.epochs_advanced
  | None -> ());
  Format.fprintf ppf "@]"

let rec remove_one v = function
  | [] -> []
  | x :: rest -> if x = v then rest else x :: remove_one v rest

let run cfg s =
  if cfg.domains < 1 then invalid_arg "Bw_stress.run: domains < 1";
  if cfg.batch < 1 then invalid_arg "Bw_stress.run: batch < 1";
  let mix =
    (* non-unique update semantics (replace the first visible duplicate)
       have no clean sequential model; fold that weight into inserts *)
    if s.s_unique then cfg.mix
    else
      {
        cfg.mix with
        w_insert = cfg.mix.w_insert + cfg.mix.w_update;
        w_update = 0;
      }
  in
  let total_weight =
    mix.w_insert + mix.w_read + mix.w_update + mix.w_remove + mix.w_scan
  in
  if total_weight <= 0 then invalid_arg "Bw_stress.run: empty mix";
  let keyspace = cfg.domains * cfg.keys_per_domain in
  let checker_tid = cfg.domains in
  (* violation sink, shared by all domains *)
  let vmutex = Mutex.create () in
  let violations = ref [] in
  let n_violations = ref 0 in
  let checks = Atomic.make 0 in
  let record cond msg =
    Atomic.incr checks;
    if not cond then begin
      Mutex.lock vmutex;
      incr n_violations;
      if !n_violations <= max_reported_violations then
        violations := msg () :: !violations;
      Mutex.unlock vmutex
    end
  in
  let workers =
    Array.init cfg.domains (fun wid ->
        {
          wid;
          rng = Rng.create ~seed:(Int64.of_int (cfg.seed + (wid * 7919)));
          journal = Growable.create ();
          mine = Hashtbl.create 256;
          oracle = Hashtbl.create 256;
          seq = 0;
        })
  in
  let table = MT.create ~chunk_bits:10 ~dir_bits:10 ~dummy:(-1) () in
  let churn_live_cap = 512 in
  let churners =
    Array.init cfg.churn_domains (fun cid ->
        {
          cid;
          c_rng = Rng.create ~seed:(Int64.of_int (cfg.seed + 104729 + cid));
          c_live = Growable.create ();
          c_seq = 0;
          c_ops = 0;
        })
  in
  let phaser = Runner.Phaser.create (cfg.domains + cfg.churn_domains) in
  let stop_flag = Atomic.make false in
  let t0 = Unix.gettimeofday () in

  (* --- worker op generation --- *)
  let find_or_empty tbl k = try Hashtbl.find tbl k with Not_found -> [] in
  let use_batch = cfg.batch > 1 && s.s_batch <> None in
  (* Journal an executed point op and update the worker's private view;
     shared by the direct path and the batch flush, so batched results
     land in the journal in submission order — exactly what the oracle
     replay expects. *)
  let note (st : worker_state) op res =
    match (op, res) with
    | Sb_insert (k, v), Sb_applied r ->
        Growable.push st.journal (E_insert (k, v, r));
        if r then
          Hashtbl.replace st.mine k
            (if s.s_unique then [ v ] else v :: find_or_empty st.mine k)
    | Sb_lookup k, Sb_values vs -> Growable.push st.journal (E_lookup (k, vs))
    | Sb_update (k, v), Sb_applied r ->
        Growable.push st.journal (E_update (k, v, r));
        if r then Hashtbl.replace st.mine k [ v ]
    | Sb_remove (k, v), Sb_applied r ->
        Growable.push st.journal (E_remove (k, v, r));
        if r then
          if s.s_unique then Hashtbl.remove st.mine k
          else (
            match remove_one v (find_or_empty st.mine k) with
            | [] -> Hashtbl.remove st.mine k
            | l -> Hashtbl.replace st.mine k l)
    | (Sb_insert _ | Sb_update _ | Sb_remove _), Sb_values _
    | Sb_lookup _, Sb_applied _ ->
        record false (fun () ->
            Printf.sprintf "[worker %d] batch result has the wrong shape"
              st.wid)
  in
  let exec_one (st : worker_state) ~submit ~scan =
    let own_key () =
      (st.wid * cfg.keys_per_domain) + Rng.next_int st.rng cfg.keys_per_domain
    in
    let any_key () = Rng.next_int st.rng keyspace in
    let fresh st k =
      st.seq <- st.seq + 1;
      value_of k st.seq
    in
    let x = Rng.next_int st.rng total_weight in
    if x < mix.w_insert then begin
      let k = own_key () in
      submit (Sb_insert (k, fresh st k))
    end
    else if x < mix.w_insert + mix.w_read then submit (Sb_lookup (any_key ()))
    else if x < mix.w_insert + mix.w_read + mix.w_update then begin
      let k = own_key () in
      submit (Sb_update (k, fresh st k))
    end
    else if x < mix.w_insert + mix.w_read + mix.w_update + mix.w_remove
    then begin
      let k = own_key () in
      (* in non-unique mode remove needs an exact live pair to have a
         chance of succeeding; fall back to a never-inserted value.
         [mine] may lag behind ops still buffered for the next batch
         flush — that only lowers the hit rate, the oracle replays
         whatever actually happened *)
      let v =
        match find_or_empty st.mine k with
        | v :: _ -> v
        | [] -> value_of k 0
      in
      submit (Sb_remove (k, v))
    end
    else scan (any_key ())
  in

  let worker_loop wid =
    let st = workers.(wid) in
    let tid = wid in
    let direct op =
      let res =
        match op with
        | Sb_insert (k, v) -> Sb_applied (s.s_insert ~tid k v)
        | Sb_lookup k -> Sb_values (s.s_lookup ~tid k)
        | Sb_update (k, v) -> Sb_applied (s.s_update ~tid k v)
        | Sb_remove (k, v) -> Sb_applied (s.s_remove ~tid k v)
      in
      note st op res
    in
    let run_batch =
      match s.s_batch with Some f -> f | None -> fun ~tid:_ _ -> [||]
    in
    let pend = Growable.create () in
    let flush () =
      let n = Growable.length pend in
      if n > 0 then begin
        let ops = Bw_util.Arr.init n (Growable.get pend) in
        let res = run_batch ~tid ops in
        if Array.length res = n then
          Array.iteri (fun i op -> note st op res.(i)) ops
        else
          record false (fun () ->
              Printf.sprintf
                "[worker %d] batch of %d ops returned %d results" st.wid n
                (Array.length res));
        (* keep the backing storage across flushes *)
        Growable.reset pend
      end
    in
    let submit op =
      if use_batch then begin
        Growable.push pend op;
        if Growable.length pend >= cfg.batch then flush ()
      end
      else direct op
    in
    let scan k =
      (* scans have no batch form: order them after the pending ops *)
      if use_batch then flush ();
      Growable.push st.journal
        (E_scan (k, cfg.scan_len, s.s_scan ~tid k cfg.scan_len))
    in
    let continue = ref true in
    while !continue do
      for _ = 1 to cfg.ops_per_phase do
        exec_one st ~submit ~scan
      done;
      if use_batch then flush ();
      s.s_quiesce ~tid:wid;
      Runner.Phaser.await phaser;
      if Atomic.get stop_flag then continue := false
    done
  in

  (* --- mapping-table churn --- *)
  let churn_loop cid =
    let st = churners.(cid) in
    let continue = ref true in
    while !continue do
      for _ = 1 to cfg.churn_ops_per_phase do
        st.c_ops <- st.c_ops + 1;
        let len = Growable.length st.c_live in
        if len > 0 && (len >= churn_live_cap || Rng.next_bool st.c_rng)
        then begin
          let i = Rng.next_int st.c_rng len in
          let id, v = Growable.get st.c_live i in
          Growable.set st.c_live i (Growable.get st.c_live (len - 1));
          Growable.truncate st.c_live (len - 1);
          (* no other domain may touch an id we own: a mismatch here means
             a racing free_id stomped a live cell *)
          record
            (MT.get table id = v)
            (fun () ->
              Printf.sprintf "[churn %d] live id %d reads %d, expected %d"
                cid id (MT.get table id) v);
          MT.free_id table id
        end
        else begin
          st.c_seq <- st.c_seq + 1;
          let v = (cid lsl 40) lor st.c_seq in
          let id = MT.allocate table v in
          record
            (MT.get table id = v)
            (fun () ->
              Printf.sprintf
                "[churn %d] allocate %d installed %d but reads %d" cid id v
                (MT.get table id));
          Growable.push st.c_live (id, v)
        end
      done;
      Runner.Phaser.await phaser;
      if Atomic.get stop_flag then continue := false
    done
  in

  (* --- controller-side checks, run while everyone is parked --- *)
  let replay ~phase (st : worker_state) =
    let ctx op = Printf.sprintf "[phase %d][worker %d] %s" phase st.wid op in
    let o = st.oracle in
    Growable.iter
      (fun e ->
        match e with
        | E_insert (k, v, r) ->
            let cur = find_or_empty o k in
            let expected =
              if s.s_unique then cur = [] else not (List.mem v cur)
            in
            record (r = expected) (fun () ->
                ctx
                  (Printf.sprintf "insert(%d,%d) returned %b, oracle says %b"
                     k v r expected));
            if r then
              Hashtbl.replace o k (if s.s_unique then [ v ] else v :: cur)
        | E_remove (k, v, r) ->
            let cur = find_or_empty o k in
            let expected =
              if s.s_unique then cur <> [] else List.mem v cur
            in
            record (r = expected) (fun () ->
                ctx
                  (Printf.sprintf "remove(%d,%d) returned %b, oracle says %b"
                     k v r expected));
            if r then
              if s.s_unique then Hashtbl.remove o k
              else (
                match remove_one v cur with
                | [] -> Hashtbl.remove o k
                | l -> Hashtbl.replace o k l)
        | E_update (k, v, r) ->
            let cur = find_or_empty o k in
            record
              (r = (cur <> []))
              (fun () ->
                ctx
                  (Printf.sprintf "update(%d,%d) returned %b, oracle says %b"
                     k v r (cur <> [])));
            if r then Hashtbl.replace o k [ v ]
        | E_lookup (k, vs) ->
            if k / cfg.keys_per_domain = st.wid then
              let expected = List.sort compare (find_or_empty o k) in
              record
                (List.sort compare vs = expected)
                (fun () ->
                  ctx
                    (Printf.sprintf
                       "lookup(%d) saw [%s], oracle says [%s]" k
                       (String.concat ";" (List.map string_of_int vs))
                       (String.concat ";"
                          (List.map string_of_int expected))))
            else begin
              record
                (List.for_all (fun v -> v lsr value_bits = k) vs)
                (fun () ->
                  ctx
                    (Printf.sprintf
                       "lookup(%d) returned a value of another key" k));
              if s.s_unique then
                record
                  (List.length vs <= 1)
                  (fun () ->
                    ctx
                      (Printf.sprintf "lookup(%d) saw %d values on a unique \
                                       index" k (List.length vs)))
            end
        | E_scan (k, n, c) ->
            record
              (c >= 0 && c <= n)
              (fun () ->
                ctx (Printf.sprintf "scan(%d,%d) visited %d items" k n c)))
      st.journal;
    Growable.clear st.journal
  in

  let sweep ~phase =
    for k = 0 to keyspace - 1 do
      let vs = List.sort compare (s.s_lookup ~tid:checker_tid k) in
      let owner = workers.(k / cfg.keys_per_domain) in
      let expected = List.sort compare (find_or_empty owner.oracle k) in
      record (vs = expected) (fun () ->
          Printf.sprintf
            "[phase %d] sweep: key %d holds [%s] but oracle says [%s]" phase
            k
            (String.concat ";" (List.map string_of_int vs))
            (String.concat ";" (List.map string_of_int expected)))
    done
  in

  let check_epoch ~phase =
    match s.s_epoch with
    | None -> ()
    | Some e ->
        for tid = 0 to checker_tid do
          s.s_quiesce ~tid
        done;
        Epoch.flush e;
        record
          (Epoch.pending e = 0)
          (fun () ->
            Printf.sprintf
              "[phase %d] epoch: %d objects still pending after quiesce + \
               flush" phase (Epoch.pending e));
        (* The observability gauge must agree with the direct probe: a
           quiesced, flushed tree reports zero pending garbage. *)
        (match s.s_obs with
        | Bw_obs.Null -> ()
        | Bw_obs.To reg ->
            let sn = Bw_obs.snapshot reg in
            let g =
              try List.assoc Bw_obs.G_epoch_pending sn.Bw_obs.sn_gauges
              with Not_found -> 0
            in
            record (g = 0) (fun () ->
                Printf.sprintf
                  "[phase %d] obs: pending-garbage gauge reads %d after \
                   quiesce + flush" phase g))
  in

  let check_structure ~phase =
    (match (s.s_max_chains, s.s_chain_bound) with
    | Some probe, Some bound ->
        let leaf, inner = probe () in
        record (leaf <= bound) (fun () ->
            Printf.sprintf "[phase %d] leaf delta chain %d exceeds bound %d"
              phase leaf bound);
        record (inner <= bound) (fun () ->
            Printf.sprintf "[phase %d] inner delta chain %d exceeds bound %d"
              phase inner bound)
    | _ -> ());
    match s.s_verify with
    | None -> ()
    | Some verify ->
        record
          (try
             verify ();
             true
           with _ -> false)
          (fun () ->
            Printf.sprintf "[phase %d] structural verify failed: %s" phase
              (try
                 verify ();
                 "?"
               with exn -> Printexc.to_string exn))
  in

  (* Leaf-cache soundness at a quiesced barrier: sampled keys probe the
     cache and compare the cached leaf against a from-root descent (the
     splitters raced during the phase, so surviving entries must still
     agree), and the counters must satisfy the protocol's accounting —
     every failed re-validation was also an invalidation, so
     stale_verifies can never outrun invalidations + SMO events. *)
  let check_cache ~phase =
    (match s.s_cache_check with
    | None -> ()
    | Some probe ->
        let step = max 1 (keyspace / 512) in
        let k = ref 0 in
        while !k < keyspace do
          record
            (probe ~tid:checker_tid !k)
            (fun () ->
              Printf.sprintf
                "[phase %d] leaf cache: cached leaf for key %d disagrees \
                 with a from-root descent" phase !k);
          k := !k + step
        done);
    match s.s_cache_stats with
    | None -> ()
    | Some stats ->
        let st = stats () in
        record
          (st.Bwtree.lc_stale_verifies
          <= st.Bwtree.lc_invalidations + st.Bwtree.lc_smo_events)
          (fun () ->
            Printf.sprintf
              "[phase %d] leaf cache: %d stale verifies exceed %d \
               invalidations + %d SMO events" phase
              st.Bwtree.lc_stale_verifies st.Bwtree.lc_invalidations
              st.Bwtree.lc_smo_events)
  in

  let check_table ~phase =
    if cfg.churn_domains > 0 then begin
      let seen = Hashtbl.create 1024 in
      let live = ref 0 in
      Array.iter
        (fun st ->
          Growable.iter
            (fun (id, v) ->
              incr live;
              record
                (not (Hashtbl.mem seen id))
                (fun () ->
                  Printf.sprintf "[phase %d] table: id %d live twice" phase id);
              Hashtbl.replace seen id ();
              record (MT.get table id = v) (fun () ->
                  Printf.sprintf
                    "[phase %d] table: live id %d reads %d, expected %d"
                    phase id (MT.get table id) v))
            st.c_live)
        churners;
      let free = MT.free_list_length table and hw = MT.high_water table in
      record
        (!live + free = hw)
        (fun () ->
          Printf.sprintf
            "[phase %d] table accounting: %d live + %d free <> high water %d"
            phase !live free hw)
    end
  in

  (* --- spin everything up --- *)
  s.s_start_aux ();
  let advancer_stop = Atomic.make false in
  let advancer =
    match (cfg.drive_advance, s.s_epoch) with
    | true, Some e ->
        Some
          (Domain.spawn (fun () ->
               while not (Atomic.get advancer_stop) do
                 Epoch.advance e;
                 Unix.sleepf 0.0002
               done))
    | _ -> None
  in
  let worker_domains =
    Array.init cfg.domains (fun wid -> Domain.spawn (fun () -> worker_loop wid))
  in
  let churn_domains =
    Array.init cfg.churn_domains (fun cid ->
        Domain.spawn (fun () -> churn_loop cid))
  in
  let phases_done = ref 0 in
  let finished = ref false in
  while not !finished do
    Runner.Phaser.wait_all phaser;
    let phase = !phases_done + 1 in
    Array.iter (fun st -> replay ~phase st) workers;
    sweep ~phase;
    check_epoch ~phase;
    check_structure ~phase;
    check_cache ~phase;
    check_table ~phase;
    phases_done := phase;
    if cfg.verbose then
      Printf.printf
        "phase %3d | %7d ops | %7d checks | %d violation(s) | %.1fs\n%!"
        phase
        (phase * cfg.ops_per_phase * cfg.domains)
        (Atomic.get checks) !n_violations
        (Unix.gettimeofday () -. t0);
    let stop =
      match cfg.time_budget_s with
      | Some budget -> Unix.gettimeofday () -. t0 >= budget
      | None -> phase >= cfg.phases
    in
    if stop then begin
      Atomic.set stop_flag true;
      finished := true
    end;
    Runner.Phaser.release phaser
  done;
  Array.iter Domain.join worker_domains;
  Array.iter Domain.join churn_domains;
  (match advancer with
  | Some d ->
      Atomic.set advancer_stop true;
      Domain.join d
  | None -> ());
  s.s_stop_aux ();
  {
    r_ops = !phases_done * cfg.ops_per_phase * cfg.domains;
    r_churn_ops = Array.fold_left (fun acc st -> acc + st.c_ops) 0 churners;
    r_phases = !phases_done;
    r_checks = Atomic.get checks;
    r_violations = List.rev !violations;
    r_seconds = Unix.gettimeofday () -. t0;
    r_epoch = Option.map Epoch.stats s.s_epoch;
  }

(* ------------------------------------------------------------------ *)
(* Crash-recovery stress: kill a durable pagestore mid-flight,        *)
(* corrupt its WAL tail, recover, and check prefix consistency.       *)
(* ------------------------------------------------------------------ *)

type crash_config = {
  cc_domains : int;
  cc_keys_per_domain : int;
  cc_ops_per_phase : int;
  cc_batch : int;
  cc_shards : int;
  cc_fsync : bool;
  cc_segment_bytes : int;
  cc_rounds : int;
  cc_seed : int;
  cc_dir : string;
  cc_verbose : bool;
}

let short_crash_config ~dir =
  {
    cc_domains = 3;
    cc_keys_per_domain = 128;
    cc_ops_per_phase = 300;
    cc_batch = 1;
    cc_shards = 1;
    cc_fsync = false;
    cc_segment_bytes = 4096;
    cc_rounds = 3;
    cc_seed = 42;
    cc_dir = dir;
    cc_verbose = false;
  }

type crash_report = {
  cr_rounds : int;
  cr_ops : int;  (** applied writes journaled across all rounds *)
  cr_replayed : int;  (** WAL ops replayed over all recoveries *)
  cr_torn_bytes : int;
  cr_dropped_segments : int;
  cr_checks : int;
  cr_violations : string list;
}

let pp_crash_report ppf r =
  Format.fprintf ppf
    "crash-recovery: %d rounds | %d writes, %d replayed | torn %dB, %d \
     segments dropped | %d checks"
    r.cr_rounds r.cr_ops r.cr_replayed r.cr_torn_bytes r.cr_dropped_segments
    r.cr_checks;
  if r.cr_violations = [] then Format.fprintf ppf " | all invariants held"
  else begin
    Format.fprintf ppf " | %d VIOLATIONS:" (List.length r.cr_violations);
    List.iter (fun v -> Format.fprintf ppf "@.  %s" v) r.cr_violations
  end

(* Replayed-op view: what the recovery's [on_replay] callback saw, in a
   shape comparable against the worker journals. *)
type cw_op =
  | Cw_insert of int * int
  | Cw_update of int * int
  | Cw_upsert of int * int
  | Cw_remove of int

let cw_key = function
  | Cw_insert (k, _) | Cw_update (k, _) | Cw_upsert (k, _) | Cw_remove k -> k

let cw_to_string = function
  | Cw_insert (k, v) -> Printf.sprintf "insert(%d,%#x)" k v
  | Cw_update (k, v) -> Printf.sprintf "update(%d,%#x)" k v
  | Cw_upsert (k, v) -> Printf.sprintf "upsert(%d,%#x)" k v
  | Cw_remove k -> Printf.sprintf "remove(%d)" k

(* Per-worker crash-round state: [cj1]/[cj2] journal the applied writes
   of the two phases as [(shard, op)] in submission order; [c_mine] is
   the worker's private view used to pick plausible targets. *)
type cworker = {
  c_wid : int;
  c_rng : Rng.t;
  c_mine : (int, int) Hashtbl.t;
  mutable c_seq : int;
  cj1 : (int * cw_op) Growable.t;
  cj2 : (int * cw_op) Growable.t;
}

let rec cw_is_prefix got expected =
  match (got, expected) with
  | [], _ -> true
  | g :: gt, e :: et -> g = e && cw_is_prefix gt et
  | _ :: _, [] -> false

(* Flip one random bit of [path] at a random offset, through a plain fd
   (write-through, like the log's own appends). *)
let flip_random_bit rng path size =
  let off = Rng.next_int rng size in
  let bit = Rng.next_int rng 8 in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      if Unix.read fd b 0 1 = 1 then begin
        Bytes.set b 0
          (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl bit)));
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        ignore (Unix.write fd b 0 1)
      end)

(* One load → checkpoint → load → crash → corrupt → recover → verify
   cycle against a fresh data dir. *)
let run_crash_round (cfg : crash_config) ~seed ~record =
  let module D = Harness.Drivers in
  let module W = D.Durable_int.W in
  let shards = max 1 cfg.cc_shards in
  let keyspace = cfg.cc_domains * cfg.cc_keys_per_domain in
  let checker_tid = cfg.cc_domains in
  let part = Bw_shard.Part.make_int ~lo:0 ~hi:(keyspace - 1) shards in
  let shard_of k = if shards = 1 then 0 else Bw_shard.Part.shard_of_int part k in
  Pagestore.Store.rm_rf cfg.cc_dir;
  let open_durable ?on_replay () : int D.durable =
    if shards = 1 then
      D.durable_bwtree_int ~segment_bytes:cfg.cc_segment_bytes
        ~fsync:cfg.cc_fsync
        ?on_replay:(Option.map (fun f -> f 0) on_replay)
        ~dir:cfg.cc_dir ()
    else
      D.durable_bwtree_forest_int ~segment_bytes:cfg.cc_segment_bytes
        ~fsync:cfg.cc_fsync ~lo:0 ~hi:(keyspace - 1) ?on_replay ~shards
        ~dir:cfg.cc_dir ()
  in
  let workers =
    Array.init cfg.cc_domains (fun wid ->
        {
          c_wid = wid;
          c_rng = Rng.create ~seed:(Int64.of_int (seed + (wid * 7919)));
          c_mine = Hashtbl.create 256;
          c_seq = 0;
          cj1 = Growable.create ();
          cj2 = Growable.create ();
        })
  in
  (* --- one worker phase: random writes on the worker's own stripe --- *)
  let worker_phase (d : int Runner.driver) (st : cworker) journal =
    let tid = st.c_wid in
    let own_key () =
      (st.c_wid * cfg.cc_keys_per_domain)
      + Rng.next_int st.c_rng cfg.cc_keys_per_domain
    in
    let fresh_value k =
      st.c_seq <- st.c_seq + 1;
      value_of k st.c_seq
    in
    (* generate one op as batch-op data; results are folded back below *)
    let gen () =
      let k = own_key () in
      let r = Rng.next_int st.c_rng 100 in
      if r < 40 then Index_iface.Bop_insert (k, fresh_value k)
      else if r < 65 then Index_iface.Bop_update (k, fresh_value k)
      else if r < 85 then Index_iface.Bop_remove k
      else Index_iface.Bop_read k
    in
    let note op res =
      match (op, res) with
      | Index_iface.Bop_insert (k, v), Index_iface.Bres_applied true ->
          Hashtbl.replace st.c_mine k v;
          Growable.push journal (shard_of k, Cw_insert (k, v))
      | Index_iface.Bop_update (k, v), Index_iface.Bres_applied true ->
          Hashtbl.replace st.c_mine k v;
          Growable.push journal (shard_of k, Cw_update (k, v))
      | Index_iface.Bop_remove k, Index_iface.Bres_applied true ->
          Hashtbl.remove st.c_mine k;
          Growable.push journal (shard_of k, Cw_remove k)
      | _ -> ()
    in
    if cfg.cc_batch <= 1 then
      for _ = 1 to cfg.cc_ops_per_phase do
        let op = gen () in
        let res =
          match op with
          | Index_iface.Bop_insert (k, v) ->
              Index_iface.Bres_applied (d.Runner.insert ~tid k v)
          | Index_iface.Bop_update (k, v) ->
              Index_iface.Bres_applied (d.Runner.update ~tid k v)
          | Index_iface.Bop_upsert _ -> assert false (* never generated *)
          | Index_iface.Bop_remove k ->
              Index_iface.Bres_applied (d.Runner.remove ~tid k)
          | Index_iface.Bop_read k ->
              Index_iface.Bres_value (d.Runner.read ~tid k)
        in
        note op res
      done
    else begin
      let left = ref cfg.cc_ops_per_phase in
      while !left > 0 do
        let n = min cfg.cc_batch !left in
        left := !left - n;
        let ops = Array.init n (fun _ -> gen ()) in
        let res = Index_iface.exec_batch d ~tid ops in
        Array.iteri (fun i op -> note op res.(i)) ops
      done
    end;
    d.Runner.thread_done ~tid
  in
  let run_phase d journal_of =
    let doms =
      Array.map
        (fun st -> Domain.spawn (fun () -> worker_phase d st (journal_of st)))
        workers
    in
    Array.iter Domain.join doms
  in

  (* phase 1 → quiesced checkpoint → phase 2 → crash (no checkpoint) *)
  let dur1 = open_durable () in
  record dur1.D.dur_stats.Pagestore.Store.rs_fresh (fun () ->
      "crash: round opened a wiped dir but recovery was not fresh");
  run_phase dur1.D.dur_driver (fun st -> st.cj1);
  dur1.D.dur_checkpoint ~tid:checker_tid ();
  run_phase dur1.D.dur_driver (fun st -> st.cj2);
  (* Simulate the kill: drop the handles without checkpointing.  The
     WAL appends are write-through, so the on-disk bytes are exactly
     what a SIGKILL at this point would leave; closing fds here only
     releases resources. *)
  dur1.D.dur_close ();

  (* --- corrupt the WAL tail, one independent decision per shard --- *)
  let shard_dirs =
    if shards = 1 then [| cfg.cc_dir |]
    else
      Array.init shards (fun i ->
          Filename.concat cfg.cc_dir (Printf.sprintf "shard-%02d" i))
  in
  let crng = Rng.create ~seed:(Int64.of_int (seed + 604171)) in
  Array.iter
    (fun dirp ->
      match Pagestore.Store.read_current dirp with
      | None ->
          record false (fun () ->
              Printf.sprintf "crash: no CURRENT under %s after shutdown" dirp)
      | Some gen -> (
          let wdir = Pagestore.Store.wal_dir dirp gen in
          let files = ref [] in
          let i = ref 0 in
          let continue = ref true in
          while !continue do
            let p = Pagestore.Log.segment_path ~dir:wdir !i in
            if Sys.file_exists p then begin
              files := (p, (Unix.stat p).Unix.st_size) :: !files;
              incr i
            end
            else continue := false
          done;
          let files = List.rev !files in
          let sized = List.filter (fun (_, s) -> s > 0) files in
          match Rng.next_int crng 3 with
          | 0 -> () (* clean-close recovery: full WAL must replay *)
          | 1 -> (
              (* tear the tail: truncate the last segment mid-record *)
              match List.rev sized with
              | (path, size) :: _ ->
                  Unix.truncate path (Rng.next_int crng size)
              | [] -> ())
          | _ -> (
              (* flip one bit anywhere: recovery must drop everything
                 from the damaged record on, in every later segment *)
              match sized with
              | [] -> ()
              | l ->
                  let path, size = List.nth l (Rng.next_int crng (List.length l)) in
                  flip_random_bit crng path size)))
    shard_dirs;

  (* --- recover, collecting the replayed ops per shard --- *)
  let replayed = Array.init shards (fun _ -> Growable.create ()) in
  let cw_of_wop = function
    | W.W_insert (k, v) -> Cw_insert (k, v)
    | W.W_update (k, v) -> Cw_update (k, v)
    | W.W_upsert (k, v) -> Cw_upsert (k, v)
    | W.W_remove k -> Cw_remove k
  in
  let dur2 =
    open_durable
      ~on_replay:(fun s op -> Growable.push replayed.(s) (cw_of_wop op))
      ()
  in
  let stats2 = dur2.D.dur_stats in
  let total_replayed =
    Array.fold_left (fun acc g -> acc + Growable.length g) 0 replayed
  in
  record (not stats2.Pagestore.Store.rs_fresh) (fun () ->
      "crash: recovery after a checkpoint came up fresh (lost the store)");
  record
    (stats2.Pagestore.Store.rs_wal_ops = total_replayed)
    (fun () ->
      Printf.sprintf
        "crash: rs_wal_ops=%d but on_replay delivered %d ops"
        stats2.Pagestore.Store.rs_wal_ops total_replayed);

  (* --- per-(worker, shard): replayed ops are a journal prefix --- *)
  let expected = Array.make_matrix cfg.cc_domains shards [] in
  Array.iter
    (fun st ->
      Growable.iter
        (fun (s, op) -> expected.(st.c_wid).(s) <- op :: expected.(st.c_wid).(s))
        st.cj2)
    workers;
  let got = Array.make_matrix cfg.cc_domains shards [] in
  Array.iteri
    (fun s g ->
      Growable.iter
        (fun op ->
          let wid = cw_key op / cfg.cc_keys_per_domain in
          if wid < 0 || wid >= cfg.cc_domains then
            record false (fun () ->
                Printf.sprintf "crash: replayed op %s outside any stripe"
                  (cw_to_string op))
          else got.(wid).(s) <- op :: got.(wid).(s))
        g)
    replayed;
  let n_replayed = Array.make_matrix cfg.cc_domains shards 0 in
  for wid = 0 to cfg.cc_domains - 1 do
    for s = 0 to shards - 1 do
      let exp = List.rev expected.(wid).(s) in
      let g = List.rev got.(wid).(s) in
      n_replayed.(wid).(s) <- List.length g;
      record (cw_is_prefix g exp) (fun () ->
          Printf.sprintf
            "crash: worker %d shard %d: %d replayed ops are not a prefix of \
             its %d journaled writes"
            wid s (List.length g) (List.length exp))
    done
  done;

  (* --- oracle: phase-1 journals in full, phase-2 up to the replayed
     prefix of each (worker, shard) --- *)
  let oracle = Hashtbl.create (keyspace * 2) in
  let apply = function
    | Cw_insert (k, v) | Cw_update (k, v) | Cw_upsert (k, v) ->
        Hashtbl.replace oracle k v
    | Cw_remove k -> Hashtbl.remove oracle k
  in
  Array.iter (fun st -> Growable.iter (fun (_, op) -> apply op) st.cj1) workers;
  Array.iter
    (fun st ->
      let remaining = Array.copy n_replayed.(st.c_wid) in
      Growable.iter
        (fun (s, op) ->
          if remaining.(s) > 0 then begin
            apply op;
            remaining.(s) <- remaining.(s) - 1
          end)
        st.cj2)
    workers;
  let d2 = dur2.D.dur_driver in
  let str_of = function None -> "absent" | Some v -> Printf.sprintf "%#x" v in
  for k = 0 to keyspace - 1 do
    let want = Hashtbl.find_opt oracle k in
    let have = d2.Runner.read ~tid:checker_tid k in
    record (want = have) (fun () ->
        Printf.sprintf "crash: recovered state diverges at key %d: index %s, \
                        oracle %s" k (str_of have) (str_of want))
  done;

  (* --- the recovered store must accept and persist new writes --- *)
  Array.iter
    (fun st ->
      let k = st.c_wid * cfg.cc_keys_per_domain in
      if Hashtbl.mem oracle k then begin
        record (d2.Runner.remove ~tid:checker_tid k) (fun () ->
            Printf.sprintf "crash: post-recovery remove of key %d refused" k);
        Hashtbl.remove oracle k
      end;
      let v = value_of k 0xBEEF in
      record (d2.Runner.insert ~tid:checker_tid k v) (fun () ->
          Printf.sprintf "crash: post-recovery insert of key %d refused" k);
      Hashtbl.replace oracle k v)
    workers;
  d2.Runner.thread_done ~tid:checker_tid;

  (* --- checkpoint, clean reopen: same state, empty WAL --- *)
  dur2.D.dur_checkpoint ~tid:checker_tid ();
  dur2.D.dur_close ();
  let dur3 = open_durable () in
  let stats3 = dur3.D.dur_stats in
  record
    (stats3.Pagestore.Store.rs_wal_ops = 0)
    (fun () ->
      Printf.sprintf "crash: WAL not empty after checkpoint (replayed %d ops)"
        stats3.Pagestore.Store.rs_wal_ops);
  record
    (stats3.Pagestore.Store.rs_snapshot_items = Hashtbl.length oracle)
    (fun () ->
      Printf.sprintf
        "crash: clean reopen loaded %d items, oracle holds %d"
        stats3.Pagestore.Store.rs_snapshot_items (Hashtbl.length oracle));
  let d3 = dur3.D.dur_driver in
  for k = 0 to keyspace - 1 do
    let want = Hashtbl.find_opt oracle k in
    let have = d3.Runner.read ~tid:checker_tid k in
    record (want = have) (fun () ->
        Printf.sprintf "crash: clean reopen diverges at key %d: index %s, \
                        oracle %s" k (str_of have) (str_of want))
  done;
  d3.Runner.thread_done ~tid:checker_tid;
  dur3.D.dur_close ();

  let journaled =
    Array.fold_left
      (fun acc st -> acc + Growable.length st.cj1 + Growable.length st.cj2)
      0 workers
  in
  ( journaled,
    total_replayed,
    stats2.Pagestore.Store.rs_truncated_bytes,
    stats2.Pagestore.Store.rs_dropped_segments )

let run_crash_recovery (cfg : crash_config) : crash_report =
  if cfg.cc_domains < 1 then
    invalid_arg "Bw_stress.run_crash_recovery: domains < 1";
  if cfg.cc_rounds < 1 then
    invalid_arg "Bw_stress.run_crash_recovery: rounds < 1";
  if cfg.cc_dir = "" || cfg.cc_dir = "/" then
    invalid_arg "Bw_stress.run_crash_recovery: refusing dir";
  let violations = ref [] in
  let n_violations = ref 0 in
  let checks = ref 0 in
  let record cond msg =
    incr checks;
    if not cond then begin
      incr n_violations;
      if !n_violations <= max_reported_violations then
        violations := msg () :: !violations
    end
  in
  let ops = ref 0
  and replayed = ref 0
  and torn = ref 0
  and dropped = ref 0 in
  for round = 0 to cfg.cc_rounds - 1 do
    let j, r, t, d =
      run_crash_round cfg ~seed:(cfg.cc_seed + (round * 1009)) ~record
    in
    ops := !ops + j;
    replayed := !replayed + r;
    torn := !torn + t;
    dropped := !dropped + d;
    if cfg.cc_verbose then
      Printf.printf
        "crash round %d/%d: %d writes, %d replayed, torn %dB, %d dropped\n%!"
        (round + 1) cfg.cc_rounds j r t d
  done;
  Pagestore.Store.rm_rf cfg.cc_dir;
  {
    cr_rounds = cfg.cc_rounds;
    cr_ops = !ops;
    cr_replayed = !replayed;
    cr_torn_bytes = !torn;
    cr_dropped_segments = !dropped;
    cr_checks = !checks;
    cr_violations = List.rev !violations;
  }
