(** In-memory B+Tree with Optimistic Lock Coupling (Leis et al., DaMoN
    2016) — the lock-based baseline that §6 of the paper finds outperforms
    the Bw-Tree.

    Concurrency: every node carries a version word whose low bit is a
    write-lock. Readers sample versions, read optimistically and
    re-validate (restarting on interference); writers lock only the nodes
    they modify. Splits happen eagerly on the way down, so no operation
    ever holds more than two locks.

    Deletion removes keys without rebalancing (see DESIGN.md, "Known
    deviations"). *)

exception Restart
(** Internal retry signal; never escapes the public functions. *)

module Make (K : Bwtree.KEY) (V : Bwtree.VALUE) : sig
  type key = K.t
  type value = V.t

  type t
  (** A concurrent ordered map. All operations are safe to call from any
      number of domains; [tid] only labels the caller for the software
      event counters. *)

  val create : unit -> t

  val insert : t -> tid:int -> key -> value -> bool
  (** [false] if the key was already present. *)

  val lookup : t -> tid:int -> key -> value option
  val update : t -> tid:int -> key -> value -> bool
  val delete : t -> tid:int -> key -> bool

  val scan : t -> tid:int -> key -> n:int -> (key -> value -> unit) -> int
  (** [scan t ~tid k ~n visit] hands up to [n] items starting at the first
      key >= [k] to [visit] in key order, following the leaf sibling
      links, and returns the count visited. Items are buffered until the
      optimistic attempt validates, so a restart never double-reports. *)

  val verify_invariants : t -> unit
  (** Key ordering and range containment over the whole tree; quiescent
      callers only. Raises [Failure] on violation. *)

  val cardinal : t -> int
  val memory_words : t -> int
end
