(** In-memory B+Tree synchronized with Optimistic Lock Coupling (OLC),
    after Leis et al., "The ART of practical synchronization" (DaMoN 2016)
    — the lock-based baseline the paper finds outperforms the Bw-Tree.

    Every node carries a version word: bit 0 is the write-lock bit, the
    upper bits count modifications. Readers never write shared memory: they
    sample the version, read optimistically, and re-validate; a concurrent
    writer forces a restart. Writers lock only the nodes they modify.
    Structure modifications use eager splitting on the way down, so a leaf
    split never needs to propagate more than one level.

    Deletion removes keys but does not rebalance (leaves may underflow);
    this is the common practice for in-memory B+Trees driven by OLTP
    workloads and does not affect the paper's workloads, which never shrink
    the tree. *)

module Counters = Bw_util.Counters

exception Restart

module Make (K : Bwtree.KEY) (V : Bwtree.VALUE) = struct
  type key = K.t
  type value = V.t

  (* Node capacity: 4 KB-ish nodes as configured in §6 ("We configure the
     B+Tree to use 4KB node size"): 256 entries of (8B key, 8B payload). *)
  let leaf_capacity = 256
  let inner_capacity = 256

  type node = {
    version : int Atomic.t;  (* bit 0 = locked, bits 1.. = counter *)
    mutable count : int;
    keys : key array;
    kind : kind;
  }

  and kind =
    | Leaf of leaf
    | Inner of inner

  and leaf = { vals : value array; mutable next : node option }

  and inner = {
    (* children.(i) holds keys < keys.(i); children.(count) the rest *)
    children : node array;
  }

  type t = { root : node Atomic.t }

  let cnt tid ev =
    if !Counters.enabled then Counters.incr Counters.global ~tid ev

  (* --- version-lock primitives --- *)

  let is_locked v = v land 1 = 1

  let read_lock n =
    let v = Atomic.get n.version in
    if is_locked v then raise Restart;
    v

  let validate n v = if Atomic.get n.version <> v then raise Restart

  let upgrade n v =
    if not (Atomic.compare_and_set n.version v (v + 1)) then raise Restart

  let write_unlock n =
    Atomic.set n.version (Atomic.get n.version + 1)

  (* --- construction --- *)

  let new_leaf () =
    {
      version = Atomic.make 0;
      count = 0;
      keys = Array.make leaf_capacity K.dummy;
      kind = Leaf { vals = Array.make leaf_capacity (Obj.magic 0 : value); next = None };
    }

  let new_inner () =
    {
      version = Atomic.make 0;
      count = 0;
      keys = Array.make inner_capacity K.dummy;
      kind =
        Inner { children = Array.make (inner_capacity + 1) (Obj.magic 0 : node) };
    }

  let create () = { root = Atomic.make (new_leaf ()) }

  (* --- search within a node --- *)

  (* first index with keys.(i) >= k over the first [count] entries; racing
     reads may observe a torn (count, keys) pair — the caller re-validates
     the version before trusting the result *)
  let lower_bound ~tid n k =
    let count = n.count in
    let count = if count < 0 then 0 else min count (Array.length n.keys) in
    let lo = ref 0 and hi = ref count in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      cnt tid Counters.Key_compare;
      if K.compare n.keys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  let child_for ~tid n k =
    match n.kind with
    | Inner i ->
        let pos = lower_bound ~tid n k in
        (* route equal keys to the right subtree: separator keys.(i) is the
           smallest key of children.(i+1) *)
        let pos =
          if pos < n.count && K.compare n.keys.(pos) k = 0 then pos + 1
          else pos
        in
        i.children.(pos)
    | Leaf _ -> assert false

  let is_full n =
    match n.kind with
    | Leaf _ -> n.count >= leaf_capacity
    | Inner _ -> n.count >= inner_capacity - 1

  (* --- splits (caller holds write locks on [parent] and [child]) --- *)

  (* returns the separator pushed up and the new right node *)
  let split_node child =
    let mid = child.count / 2 in
    match child.kind with
    | Leaf l ->
        let right = new_leaf () in
        let rl = match right.kind with Leaf rl -> rl | _ -> assert false in
        let moved = child.count - mid in
        Array.blit child.keys mid right.keys 0 moved;
        Array.blit l.vals mid rl.vals 0 moved;
        right.count <- moved;
        rl.next <- l.next;
        l.next <- Some right;
        child.count <- mid;
        (right.keys.(0), right)
    | Inner i ->
        let right = new_inner () in
        let ri = match right.kind with Inner ri -> ri | _ -> assert false in
        let sep = child.keys.(mid) in
        let moved = child.count - mid - 1 in
        Array.blit child.keys (mid + 1) right.keys 0 moved;
        Array.blit i.children (mid + 1) ri.children 0 (moved + 1);
        right.count <- moved;
        child.count <- mid;
        (sep, right)

  let insert_into_inner parent sep right =
    match parent.kind with
    | Inner i ->
        let pos = ref parent.count in
        while !pos > 0 && K.compare parent.keys.(!pos - 1) sep > 0 do
          parent.keys.(!pos) <- parent.keys.(!pos - 1);
          i.children.(!pos + 1) <- i.children.(!pos);
          decr pos
        done;
        parent.keys.(!pos) <- sep;
        i.children.(!pos + 1) <- right;
        parent.count <- parent.count + 1
    | Leaf _ -> assert false

  (* --- retry plumbing --- *)

  let rec retry ~tid f =
    try f () with
    | Restart ->
        cnt tid Counters.Restart;
        Domain.cpu_relax ();
        retry ~tid f
    | Invalid_argument _ ->
        (* a torn optimistic read indexed out of bounds; treat as restart *)
        cnt tid Counters.Restart;
        Domain.cpu_relax ();
        retry ~tid f

  (* --- operations --- *)

  (* Descend with lock coupling; on reaching the leaf, call
     [at_leaf leaf version]. Full children are split eagerly on the way
     down, so the leaf-level operation never propagates. *)
  let descend t ~tid k ~for_insert at_leaf =
    let root = Atomic.get t.root in
    let v = read_lock root in
    (* a stale root pointer: re-check after sampling the version *)
    if Atomic.get t.root != root then raise Restart;
    (* eager root split *)
    if for_insert && is_full root then begin
      upgrade root v;
      if Atomic.get t.root != root then begin
        write_unlock root;
        raise Restart
      end;
      let sep, right = split_node root in
      let new_root = new_inner () in
      (match new_root.kind with
      | Inner i ->
          new_root.keys.(0) <- sep;
          i.children.(0) <- root;
          i.children.(1) <- right;
          new_root.count <- 1
      | Leaf _ -> assert false);
      let ok = Atomic.compare_and_set t.root root new_root in
      assert ok;
      write_unlock root;
      raise Restart
    end;
    let rec go node v =
      cnt tid Counters.Node_visit;
      match node.kind with
      | Leaf _ -> at_leaf node v
      | Inner _ ->
          cnt tid Counters.Pointer_deref;
          let child = child_for ~tid node k in
          validate node v;
          let cv = read_lock child in
          if for_insert && is_full child then begin
            (* eager split: lock parent then child *)
            upgrade node v;
            (try upgrade child cv
             with Restart ->
               write_unlock node;
               raise Restart);
            let sep, right = split_node child in
            insert_into_inner node sep right;
            write_unlock child;
            write_unlock node;
            raise Restart
          end
          else begin
            validate node v;
            go child cv
          end
    in
    go root v

  let insert t ~tid k value =
    retry ~tid @@ fun () ->
    descend t ~tid k ~for_insert:true @@ fun leaf v ->
    let l = match leaf.kind with Leaf l -> l | Inner _ -> assert false in
    let pos = lower_bound ~tid leaf k in
    if pos < leaf.count && K.compare leaf.keys.(pos) k = 0 then begin
      validate leaf v;
      false
    end
    else begin
      upgrade leaf v;
      (* re-check under the lock: position may have shifted *)
      let pos = lower_bound ~tid leaf k in
      if pos < leaf.count && K.compare leaf.keys.(pos) k = 0 then begin
        write_unlock leaf;
        false
      end
      else begin
        Array.blit leaf.keys pos leaf.keys (pos + 1) (leaf.count - pos);
        Array.blit l.vals pos l.vals (pos + 1) (leaf.count - pos);
        leaf.keys.(pos) <- k;
        l.vals.(pos) <- value;
        leaf.count <- leaf.count + 1;
        write_unlock leaf;
        true
      end
    end

  let lookup t ~tid k =
    retry ~tid @@ fun () ->
    descend t ~tid k ~for_insert:false @@ fun leaf v ->
    let l = match leaf.kind with Leaf l -> l | Inner _ -> assert false in
    let pos = lower_bound ~tid leaf k in
    let result =
      if pos < leaf.count && K.compare leaf.keys.(pos) k = 0 then
        Some l.vals.(pos)
      else None
    in
    validate leaf v;
    result

  let update t ~tid k value =
    retry ~tid @@ fun () ->
    descend t ~tid k ~for_insert:false @@ fun leaf v ->
    let l = match leaf.kind with Leaf l -> l | Inner _ -> assert false in
    let pos = lower_bound ~tid leaf k in
    if pos < leaf.count && K.compare leaf.keys.(pos) k = 0 then begin
      upgrade leaf v;
      let pos = lower_bound ~tid leaf k in
      if pos < leaf.count && K.compare leaf.keys.(pos) k = 0 then begin
        l.vals.(pos) <- value;
        write_unlock leaf;
        true
      end
      else begin
        write_unlock leaf;
        false
      end
    end
    else begin
      validate leaf v;
      false
    end

  let delete t ~tid k =
    retry ~tid @@ fun () ->
    descend t ~tid k ~for_insert:false @@ fun leaf v ->
    let l = match leaf.kind with Leaf l -> l | Inner _ -> assert false in
    let pos = lower_bound ~tid leaf k in
    if pos < leaf.count && K.compare leaf.keys.(pos) k = 0 then begin
      upgrade leaf v;
      let pos = lower_bound ~tid leaf k in
      if pos < leaf.count && K.compare leaf.keys.(pos) k = 0 then begin
        Array.blit leaf.keys (pos + 1) leaf.keys pos (leaf.count - pos - 1);
        Array.blit l.vals (pos + 1) l.vals pos (leaf.count - pos - 1);
        leaf.count <- leaf.count - 1;
        write_unlock leaf;
        true
      end
      else begin
        write_unlock leaf;
        false
      end
    end
    else begin
      validate leaf v;
      false
    end

  (* Range scan: collect up to [n] items starting at the first key >= k,
     following leaf links; each leaf is read optimistically and validated
     before its items are accepted. Items are buffered during the
     optimistic attempt and handed to [visit] only once the whole attempt
     has validated, so a restarted scan never double-reports. *)
  let scan t ~tid k ~n visit =
    let items =
      retry ~tid @@ fun () ->
      descend t ~tid k ~for_insert:false @@ fun leaf v ->
      let acc = ref [] in
      let visited = ref 0 in
      let rec walk leaf v start =
        let l = match leaf.kind with Leaf l -> l | Inner _ -> assert false in
        let count = min leaf.count (Array.length leaf.keys) in
        let here = max 0 (count - start) in
        let take = min here (n - !visited) in
        (* copy before [validate]: after it succeeds these snapshots are
           known-consistent even if a writer touches the leaf next *)
        let keys = Array.sub leaf.keys start take in
        let vals = Array.sub l.vals start take in
        let next = l.next in
        validate leaf v;
        for i = 0 to take - 1 do
          acc := (keys.(i), vals.(i)) :: !acc
        done;
        visited := !visited + take;
        if !visited < n then
          match next with
          | None -> ()
          | Some nx ->
              let nv = read_lock nx in
              walk nx nv 0
      in
      let start = lower_bound ~tid leaf k in
      walk leaf v start;
      !acc
    in
    List.fold_left
      (fun m (k, v) ->
        visit k v;
        m + 1)
      0 (List.rev items)

  (* --- single-threaded introspection (tests) --- *)

  let rec check_node node ~lo ~hi ~is_root =
    let in_range k =
      (match lo with None -> true | Some l -> K.compare k l >= 0)
      && match hi with None -> true | Some h -> K.compare k h < 0
    in
    for i = 0 to node.count - 1 do
      if not (in_range node.keys.(i)) then failwith "btree: key out of range";
      if i > 0 && K.compare node.keys.(i - 1) node.keys.(i) >= 0 then
        failwith "btree: keys out of order"
    done;
    match node.kind with
    | Leaf _ -> ()
    | Inner inner ->
        if node.count = 0 && not is_root then failwith "btree: empty inner";
        for i = 0 to node.count do
          let lo' = if i = 0 then lo else Some node.keys.(i - 1) in
          let hi' = if i = node.count then hi else Some node.keys.(i) in
          check_node inner.children.(i) ~lo:lo' ~hi:hi' ~is_root:false
        done

  let verify_invariants t =
    check_node (Atomic.get t.root) ~lo:None ~hi:None ~is_root:true

  let cardinal t =
    let rec leftmost node =
      match node.kind with
      | Leaf _ -> node
      | Inner i -> leftmost i.children.(0)
    in
    let rec count node acc =
      let l = match node.kind with Leaf l -> l | Inner _ -> assert false in
      let acc = acc + node.count in
      match l.next with None -> acc | Some nx -> count nx acc
    in
    count (leftmost (Atomic.get t.root)) 0

  let memory_words t = Obj.reachable_words (Obj.repr t)
end
