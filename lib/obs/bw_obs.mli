(** Low-overhead observability registry: latency/value histograms,
    software counters, pull-style gauges and a bounded structural-event
    trace, striped per domain so hot paths never write shared cache lines.

    Every probe takes a {!sink}. With {!Null} (the default everywhere) a
    probe is a single branch and touches nothing; with [To registry] it
    writes only the caller's stripe. Merging across stripes happens at
    {!snapshot} time, never on the hot path.

    The registry is deliberately index-agnostic: the Bw-Tree core, the
    epoch manager and the mapping table all publish into the same set of
    series, so one snapshot describes a whole tree instance. *)

(** {1 Series, counters, gauges, events} *)

(** Log-bucketed histogram series. [Lat_*] record nanosecond spans;
    [Val_*] record dimensionless magnitudes (per-op restart counts,
    delta-chain depths, reclaim batch sizes). *)
type series =
  | Lat_insert
  | Lat_delete
  | Lat_update
  | Lat_lookup
  | Lat_scan
  | Lat_consolidate  (** duration of one successful consolidation *)
  | Lat_reclaim  (** duration of one garbage-collection batch *)
  | Lat_req_get  (** server-side wire request latency, per opcode *)
  | Lat_req_put
  | Lat_req_delete
  | Lat_req_scan
  | Lat_req_batch
  | Lat_req_stats
  | Lat_req_repl  (** replication frames (SUBSCRIBE/SNAPSHOT/WALCHUNK/PROMOTE) *)
  | Val_op_restarts  (** root-restarts taken by one point operation *)
  | Val_chain_depth  (** delta-chain depth met by a lookup *)
  | Val_reclaim_batch  (** objects freed by one collection batch *)
  | Val_batch_size  (** operations in one [execute_batch] call *)

val series_name : series -> string
val series_unit : series -> string
(** ["ns"] for [Lat_*], ["count"] for [Val_*]. *)

(** Monotonic software-event counters. *)
type counter =
  | C_splits
  | C_merges
  | C_consolidations
  | C_root_collapses
  | C_reclaim_batches
  | C_mt_growths  (** mapping-table chunks faulted in *)
  | C_net_bytes_in  (** wire bytes read off client sockets *)
  | C_net_bytes_out  (** wire bytes written to client sockets *)
  | C_net_requests  (** wire requests decoded (BATCH counts as one) *)
  | C_net_errors  (** ERR replies sent (malformed frames, bad ops) *)
  | C_batch_redescents  (** batch ops that could not reuse the cached leaf *)
  | C_wal_appends  (** WAL commit records written (one per group commit) *)
  | C_wal_fsyncs  (** fsyncs issued by WAL group commits *)
  | C_wal_bytes  (** payload bytes appended to the WAL *)
  | C_recovered_pages  (** checkpoint pages loaded during recovery *)
  | C_recovered_wal_records  (** WAL records replayed during recovery *)
  | C_leaf_pack_builds  (** packed leaf pages constructed *)
  | C_leaf_gap_reuses  (** consolidations that reused the base page's arena *)
  | C_leaf_probe_cmps  (** key comparisons charged to in-leaf base searches *)
  | C_repl_records_shipped  (** WAL commit records pushed to a standby *)
  | C_repl_bytes_shipped  (** WAL payload bytes pushed to a standby *)
  | C_repl_records_applied  (** WAL commit records applied by a follower *)
  | C_repl_bytes_applied  (** WAL payload bytes applied by a follower *)
  | C_repl_ops_applied  (** individual ops applied from the stream *)
  | C_repl_snapshot_pages  (** bootstrap checkpoint pages loaded by a follower *)
  | C_repl_promotions  (** follower promotions to read-write *)
  | C_router_redirects  (** router ops answered EWRONGSHARD and retried *)
  | C_wrongshard_replies  (** ownership-gate rejections served by this node *)
  | C_migrations  (** online range migrations completed by this node *)
  | C_mig_items_copied  (** items batch-extracted to a migration destination *)
  | C_mig_ops_replayed  (** capture-WAL ops drained to a migration destination *)
  | C_ckpt_gc_runs  (** incremental checkpoints escalated to full for pages-log GC *)
  | C_ckpt_gc_bytes  (** pages-log bytes reclaimed by those escalations *)
  | C_leaf_cache_hits  (** point ops served off a verified leaf-cache entry *)
  | C_leaf_cache_misses  (** point ops that fell back to the full descent *)
  | C_leaf_cache_invalidations  (** cache entries dropped (stale or evicted) *)
  | C_leaf_cache_stale_verifies  (** cached entries that failed re-validation *)

val counter_name : counter -> string

(** Instantaneous values, sampled at {!snapshot} time from registered
    provider callbacks (no hot-path writes). *)
type gauge =
  | G_epoch_pending  (** retired objects not yet reclaimed *)
  | G_epoch_watermark_lag  (** global epoch minus the slowest reader's *)
  | G_mt_free_ids  (** mapping-table free-list length *)
  | G_mt_chunks  (** mapping-table chunks faulted in *)
  | G_net_active_conns  (** open client connections across all workers *)
  | G_net_queued_bytes  (** response bytes buffered awaiting socket writes *)
  | G_repl_lag_records  (** WAL commit records the standby is behind *)
  | G_repl_lag_bytes  (** WAL payload bytes the standby is behind *)
  | G_cluster_epoch  (** this node's current partition-table epoch *)
  | G_leaf_cache_fill  (** leaf-cache slot occupancy, per mille (0–1000) *)

val gauge_name : gauge -> string

type event_kind =
  | Ev_split
  | Ev_merge
  | Ev_consolidate
  | Ev_mt_grow
  | Ev_reclaim
  | Ev_root_collapse

val event_kind_name : event_kind -> string

(** One structural event. [ev_ns] is nanoseconds since the registry was
    created; [ev_tid] is the emitting worker, or [-1] for contexts with
    no thread identity (background collectors, chunk faults). [ev_a] and
    [ev_b] are kind-specific operands (node ids, batch sizes, …). *)
type event = {
  ev_ns : int;
  ev_tid : int;
  ev_kind : event_kind;
  ev_a : int;
  ev_b : int;
}

(** {1 Registry and sink} *)

type t

(** What probes write into: nothing, or a registry. Keeping the disabled
    case a constructor (rather than an option inside the registry) makes
    the off path a single pattern-match branch. *)
type sink = Null | To of t

val create : ?stripes:int -> ?ring_capacity:int -> unit -> t
(** [stripes] bounds the [tid]s that get private rows (default 65 —
    {!Bwtree.default_config}[.max_threads] workers plus one checker).
    Larger tids share the last stripe; with distinct tids below
    [stripes], rows are owner-written and probes never contend.
    [ring_capacity] (default 256) bounds each stripe's event ring;
    overflow drops the oldest events and is reported in the snapshot. *)

val sink : t -> sink

val enabled : sink -> bool
val now_ns : unit -> int
(** Current process clock in nanoseconds. Probe sites measure spans as
    [now_ns () - t0]; call it only after checking {!enabled}. *)

(** {1 Probes (hot path)} *)

val observe : sink -> tid:int -> series -> int -> unit
(** Add one value (span or magnitude) to a series. Negative values are
    clamped to 0. *)

val incr : sink -> tid:int -> counter -> unit

val add : sink -> tid:int -> counter -> int -> unit
(** Bump a counter by an arbitrary amount (bytes-in/out accounting). *)

val event : sink -> tid:int -> event_kind -> a:int -> b:int -> unit

val incr_anon : sink -> counter -> unit
(** Like {!incr}/{!event} for emitters with no worker identity (epoch
    background domain, mapping-table chunk faults): serialized through a
    shared stripe, so they must stay off per-operation paths. *)

val event_anon : sink -> event_kind -> a:int -> b:int -> unit

val register_gauge : sink -> gauge -> (unit -> int) -> unit
(** The provider is called at {!snapshot} time. Re-registering a gauge
    replaces the previous provider. *)

(** {1 Histograms (exposed for tests and external consumers)} *)

module Histo : sig
  (** Log-bucketed integer histogram: exact below 16, then 8 sub-buckets
      per power of two (relative bucket width <= 12.5%). Mergeable:
      bucket layout is global, so cross-domain merge is vector add. *)

  type h

  val n_buckets : int
  val bucket_of_value : int -> int
  val bucket_lo : int -> int
  (** Smallest value mapping to the bucket. *)

  val bucket_hi : int -> int
  (** Largest value mapping to the bucket. *)

  val create : unit -> h
  val add : h -> int -> unit
  val merge_into : dst:h -> h -> unit
  val count : h -> int
  val sum : h -> int
  val min_value : h -> int
  (** Exact smallest recorded value; 0 when empty. *)

  val max_value : h -> int
  (** Exact largest recorded value; 0 when empty. *)

  val quantile : h -> float -> int
  (** Nearest-rank quantile, reported as the upper bound of the bucket
      holding that rank (so [quantile h 1.0 >= max_value h]); 0 when
      empty. [q] is clamped to [0, 1]. *)
end

(** {1 Snapshot and export} *)

type histo_summary = {
  hs_series : series;
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
}

type snapshot = {
  sn_elapsed_s : float;  (** registry age when the snapshot was taken *)
  sn_histos : histo_summary list;  (** non-empty series only *)
  sn_counters : (counter * int) list;  (** every counter, zeros included *)
  sn_gauges : (gauge * int) list;  (** registered gauges only *)
  sn_events : event list;  (** surviving events, oldest first *)
  sn_event_totals : (event_kind * int) list;
      (** all-time emissions per kind (every kind, zeros included) —
          unlike [sn_events], unaffected by ring overflow *)
  sn_dropped_events : int;  (** ring overflow across all stripes *)
}

val snapshot : t -> snapshot
(** Merges all stripes. Safe to call while workers are running: rows are
    read racily, so in-flight probes may or may not be included, but
    every quiesced probe is. *)

val snapshot_all : t list -> snapshot
(** One snapshot over several registries, as if all their stripes
    belonged to one: histograms and counters merge exactly, a gauge
    registered in several registries reports the sum, event logs
    interleave by timestamp and [sn_elapsed_s] is the oldest registry's
    age. [snapshot r = snapshot_all [r]]. The shard router uses this to
    report forest-wide totals over per-shard registries. Raises
    [Invalid_argument] on the empty list. *)

val pp_snapshot : Format.formatter -> snapshot -> unit

(** {1 JSON} *)

(** A minimal self-contained JSON tree, serializer and parser — enough
    to emit snapshots and to let tests and CI validate the emitted files
    without external tooling. *)
module Json : sig
  type v =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  val to_string : v -> string
  val parse : string -> (v, string) result
  (** Strict RFC-8259-style parser (objects, arrays, strings with
      escapes, numbers, literals); [Error] carries an offset-tagged
      message. *)

  val member : string -> v -> v option
  (** Field lookup on [Obj]; [None] otherwise. *)
end

val snapshot_json : snapshot -> Json.v
val snapshot_to_string : snapshot -> string
(** [snapshot_json] rendered compactly. Schema: object with
    [elapsed_s], [histograms] (array of objects with [name], [unit],
    [count], [sum], [min], [max], [p50], [p90], [p99]), [counters]
    (object), [gauges] (object), and [events] (object with [dropped],
    [kinds] — all-time per-kind totals, overflow-proof — and [log], an
    array of [{ns; tid; kind; a; b}]). *)

val sharded_snapshot_json :
  shards:(string * snapshot) list -> snapshot -> Json.v

val sharded_snapshot_to_string :
  shards:(string * snapshot) list -> snapshot -> string
(** [sharded_snapshot_json ~shards merged] is [snapshot_json merged] —
    typically a {!snapshot_all} over per-shard registries, so the
    unprefixed entries are exact forest-wide totals — with each labeled
    shard's non-empty histograms, non-zero counters and gauges appended
    under ["<label>_<name>"] keys. The single-tree schema stays valid;
    the prefixed series add the per-shard breakdown. *)
