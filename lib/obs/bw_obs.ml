(* Per-domain-striped metrics registry. Layout notes:

   - Histograms, counters and event rings live in per-stripe rows that
     only the owning tid writes, so enabled-path probes cost a few plain
     stores and no interlocked instructions. Rows are separate heap
     blocks, which keeps different stripes off each other's cache lines
     without explicit padding.
   - Gauges are pull-only: emitters register a closure, the snapshot
     calls it. Nothing on an operation path ever publishes a gauge.
   - Emitters with no worker identity (the epoch background domain, a
     mapping-table chunk fault on whatever thread touched the id first)
     go through one shared stripe behind a mutex; such events are rare
     by construction (structural, not per-op).
   - Snapshot reads racily and merges. A probe concurrent with a
     snapshot may be missed or half-counted (count without sum); that is
     acceptable for telemetry and keeps the hot path wait-free. *)

type series =
  | Lat_insert
  | Lat_delete
  | Lat_update
  | Lat_lookup
  | Lat_scan
  | Lat_consolidate
  | Lat_reclaim
  | Lat_req_get
  | Lat_req_put
  | Lat_req_delete
  | Lat_req_scan
  | Lat_req_batch
  | Lat_req_stats
  | Lat_req_repl
  | Val_op_restarts
  | Val_chain_depth
  | Val_reclaim_batch
  | Val_batch_size

let series_index = function
  | Lat_insert -> 0
  | Lat_delete -> 1
  | Lat_update -> 2
  | Lat_lookup -> 3
  | Lat_scan -> 4
  | Lat_consolidate -> 5
  | Lat_reclaim -> 6
  | Lat_req_get -> 7
  | Lat_req_put -> 8
  | Lat_req_delete -> 9
  | Lat_req_scan -> 10
  | Lat_req_batch -> 11
  | Lat_req_stats -> 12
  | Val_op_restarts -> 13
  | Val_chain_depth -> 14
  | Val_reclaim_batch -> 15
  | Val_batch_size -> 16
  | Lat_req_repl -> 17

let all_series =
  [
    Lat_insert;
    Lat_delete;
    Lat_update;
    Lat_lookup;
    Lat_scan;
    Lat_consolidate;
    Lat_reclaim;
    Lat_req_get;
    Lat_req_put;
    Lat_req_delete;
    Lat_req_scan;
    Lat_req_batch;
    Lat_req_stats;
    Val_op_restarts;
    Val_chain_depth;
    Val_reclaim_batch;
    Val_batch_size;
    Lat_req_repl;
  ]

let n_series = List.length all_series

let series_name = function
  | Lat_insert -> "insert"
  | Lat_delete -> "delete"
  | Lat_update -> "update"
  | Lat_lookup -> "lookup"
  | Lat_scan -> "scan"
  | Lat_consolidate -> "consolidate"
  | Lat_reclaim -> "reclaim_batch"
  | Lat_req_get -> "req_get"
  | Lat_req_put -> "req_put"
  | Lat_req_delete -> "req_delete"
  | Lat_req_scan -> "req_scan"
  | Lat_req_batch -> "req_batch"
  | Lat_req_stats -> "req_stats"
  | Lat_req_repl -> "req_repl"
  | Val_op_restarts -> "op_restarts"
  | Val_chain_depth -> "chain_depth"
  | Val_reclaim_batch -> "reclaim_batch_size"
  | Val_batch_size -> "batch_size"

let series_unit = function
  | Lat_insert | Lat_delete | Lat_update | Lat_lookup | Lat_scan
  | Lat_consolidate | Lat_reclaim | Lat_req_get | Lat_req_put
  | Lat_req_delete | Lat_req_scan | Lat_req_batch | Lat_req_stats
  | Lat_req_repl ->
      "ns"
  | Val_op_restarts | Val_chain_depth | Val_reclaim_batch | Val_batch_size ->
      "count"

type counter =
  | C_splits
  | C_merges
  | C_consolidations
  | C_root_collapses
  | C_reclaim_batches
  | C_mt_growths
  | C_net_bytes_in
  | C_net_bytes_out
  | C_net_requests
  | C_net_errors
  | C_batch_redescents
  | C_wal_appends
  | C_wal_fsyncs
  | C_wal_bytes
  | C_recovered_pages
  | C_recovered_wal_records
  | C_leaf_pack_builds
  | C_leaf_gap_reuses
  | C_leaf_probe_cmps
  | C_repl_records_shipped
  | C_repl_bytes_shipped
  | C_repl_records_applied
  | C_repl_bytes_applied
  | C_repl_ops_applied
  | C_repl_snapshot_pages
  | C_repl_promotions
  | C_router_redirects
  | C_wrongshard_replies
  | C_migrations
  | C_mig_items_copied
  | C_mig_ops_replayed
  | C_ckpt_gc_runs
  | C_ckpt_gc_bytes
  | C_leaf_cache_hits
  | C_leaf_cache_misses
  | C_leaf_cache_invalidations
  | C_leaf_cache_stale_verifies

let counter_index = function
  | C_splits -> 0
  | C_merges -> 1
  | C_consolidations -> 2
  | C_root_collapses -> 3
  | C_reclaim_batches -> 4
  | C_mt_growths -> 5
  | C_net_bytes_in -> 6
  | C_net_bytes_out -> 7
  | C_net_requests -> 8
  | C_net_errors -> 9
  | C_batch_redescents -> 10
  | C_wal_appends -> 11
  | C_wal_fsyncs -> 12
  | C_wal_bytes -> 13
  | C_recovered_pages -> 14
  | C_recovered_wal_records -> 15
  | C_leaf_pack_builds -> 16
  | C_leaf_gap_reuses -> 17
  | C_leaf_probe_cmps -> 18
  | C_repl_records_shipped -> 19
  | C_repl_bytes_shipped -> 20
  | C_repl_records_applied -> 21
  | C_repl_bytes_applied -> 22
  | C_repl_ops_applied -> 23
  | C_repl_snapshot_pages -> 24
  | C_repl_promotions -> 25
  | C_router_redirects -> 26
  | C_wrongshard_replies -> 27
  | C_migrations -> 28
  | C_mig_items_copied -> 29
  | C_mig_ops_replayed -> 30
  | C_ckpt_gc_runs -> 31
  | C_ckpt_gc_bytes -> 32
  | C_leaf_cache_hits -> 33
  | C_leaf_cache_misses -> 34
  | C_leaf_cache_invalidations -> 35
  | C_leaf_cache_stale_verifies -> 36

let all_counters =
  [
    C_splits;
    C_merges;
    C_consolidations;
    C_root_collapses;
    C_reclaim_batches;
    C_mt_growths;
    C_net_bytes_in;
    C_net_bytes_out;
    C_net_requests;
    C_net_errors;
    C_batch_redescents;
    C_wal_appends;
    C_wal_fsyncs;
    C_wal_bytes;
    C_recovered_pages;
    C_recovered_wal_records;
    C_leaf_pack_builds;
    C_leaf_gap_reuses;
    C_leaf_probe_cmps;
    C_repl_records_shipped;
    C_repl_bytes_shipped;
    C_repl_records_applied;
    C_repl_bytes_applied;
    C_repl_ops_applied;
    C_repl_snapshot_pages;
    C_repl_promotions;
    C_router_redirects;
    C_wrongshard_replies;
    C_migrations;
    C_mig_items_copied;
    C_mig_ops_replayed;
    C_ckpt_gc_runs;
    C_ckpt_gc_bytes;
    C_leaf_cache_hits;
    C_leaf_cache_misses;
    C_leaf_cache_invalidations;
    C_leaf_cache_stale_verifies;
  ]

let n_counters = List.length all_counters

let counter_name = function
  | C_splits -> "splits"
  | C_merges -> "merges"
  | C_consolidations -> "consolidations"
  | C_root_collapses -> "root_collapses"
  | C_reclaim_batches -> "reclaim_batches"
  | C_mt_growths -> "mt_growths"
  | C_net_bytes_in -> "net_bytes_in"
  | C_net_bytes_out -> "net_bytes_out"
  | C_net_requests -> "net_requests"
  | C_net_errors -> "net_errors"
  | C_batch_redescents -> "batch_redescents"
  | C_wal_appends -> "wal_appends"
  | C_wal_fsyncs -> "wal_fsyncs"
  | C_wal_bytes -> "wal_bytes"
  | C_recovered_pages -> "recovered_pages"
  | C_recovered_wal_records -> "recovered_wal_records"
  | C_leaf_pack_builds -> "leaf_pack_builds"
  | C_leaf_gap_reuses -> "leaf_gap_reuses"
  | C_leaf_probe_cmps -> "leaf_probe_cmps"
  | C_repl_records_shipped -> "repl_records_shipped"
  | C_repl_bytes_shipped -> "repl_bytes_shipped"
  | C_repl_records_applied -> "repl_records_applied"
  | C_repl_bytes_applied -> "repl_bytes_applied"
  | C_repl_ops_applied -> "repl_ops_applied"
  | C_repl_snapshot_pages -> "repl_snapshot_pages"
  | C_repl_promotions -> "repl_promotions"
  | C_router_redirects -> "router_redirects"
  | C_wrongshard_replies -> "wrongshard_replies"
  | C_migrations -> "migrations"
  | C_mig_items_copied -> "mig_items_copied"
  | C_mig_ops_replayed -> "mig_ops_replayed"
  | C_ckpt_gc_runs -> "ckpt_gc_runs"
  | C_ckpt_gc_bytes -> "ckpt_gc_bytes"
  | C_leaf_cache_hits -> "leaf_cache_hits"
  | C_leaf_cache_misses -> "leaf_cache_misses"
  | C_leaf_cache_invalidations -> "leaf_cache_invalidations"
  | C_leaf_cache_stale_verifies -> "leaf_cache_stale_verifies"

type gauge =
  | G_epoch_pending
  | G_epoch_watermark_lag
  | G_mt_free_ids
  | G_mt_chunks
  | G_net_active_conns
  | G_net_queued_bytes
  | G_repl_lag_records
  | G_repl_lag_bytes
  | G_cluster_epoch
  | G_leaf_cache_fill  (** per-mille occupancy of the leaf-cache slots *)

let gauge_name = function
  | G_epoch_pending -> "epoch_pending"
  | G_epoch_watermark_lag -> "epoch_watermark_lag"
  | G_mt_free_ids -> "mt_free_ids"
  | G_mt_chunks -> "mt_chunks"
  | G_net_active_conns -> "net_active_conns"
  | G_net_queued_bytes -> "net_queued_bytes"
  | G_repl_lag_records -> "repl_lag_records"
  | G_repl_lag_bytes -> "repl_lag_bytes"
  | G_cluster_epoch -> "cluster_epoch"
  | G_leaf_cache_fill -> "leaf_cache_fill"

type event_kind =
  | Ev_split
  | Ev_merge
  | Ev_consolidate
  | Ev_mt_grow
  | Ev_reclaim
  | Ev_root_collapse

let event_kind_name = function
  | Ev_split -> "split"
  | Ev_merge -> "merge"
  | Ev_consolidate -> "consolidate"
  | Ev_mt_grow -> "mt_grow"
  | Ev_reclaim -> "reclaim"
  | Ev_root_collapse -> "root_collapse"

let all_kinds =
  [ Ev_split; Ev_merge; Ev_consolidate; Ev_mt_grow; Ev_reclaim;
    Ev_root_collapse ]

let n_kinds = List.length all_kinds

let kind_index = function
  | Ev_split -> 0
  | Ev_merge -> 1
  | Ev_consolidate -> 2
  | Ev_mt_grow -> 3
  | Ev_reclaim -> 4
  | Ev_root_collapse -> 5

type event = {
  ev_ns : int;
  ev_tid : int;
  ev_kind : event_kind;
  ev_a : int;
  ev_b : int;
}

(* ------------------------------------------------------------------ *)
(* Log-bucketed histogram                                              *)
(* ------------------------------------------------------------------ *)

module Histo = struct
  (* Bucketing: values in [0, 16) map to their own bucket; above that,
     the top bit picks an octave and the next [sub_bits] bits pick a
     sub-bucket, giving a relative bucket width of 2^-sub_bits. The
     layout is value-only (no per-histogram parameters), so any two
     histograms merge by bucket-wise addition. *)

  let sub_bits = 3
  let n_sub = 1 lsl sub_bits (* 8 *)
  let linear_limit = 2 * n_sub (* exact buckets below this *)

  (* 61 is the top set bit of max_int (= 2^62 - 1) on 64-bit OCaml, so
     the last octave's buckets end exactly at max_int *)
  let n_buckets = ((61 - sub_bits + 1) * n_sub) + n_sub

  let msb v =
    let r = ref 0 and v = ref v in
    if !v lsr 32 <> 0 then begin
      r := !r + 32;
      v := !v lsr 32
    end;
    if !v lsr 16 <> 0 then begin
      r := !r + 16;
      v := !v lsr 16
    end;
    if !v lsr 8 <> 0 then begin
      r := !r + 8;
      v := !v lsr 8
    end;
    if !v lsr 4 <> 0 then begin
      r := !r + 4;
      v := !v lsr 4
    end;
    if !v lsr 2 <> 0 then begin
      r := !r + 2;
      v := !v lsr 2
    end;
    if !v lsr 1 <> 0 then r := !r + 1;
    !r

  let bucket_of_value v =
    let v = if v < 0 then 0 else v in
    if v < linear_limit then v
    else
      let m = msb v in
      let shift = m - sub_bits in
      let sub = (v lsr shift) land (n_sub - 1) in
      ((m - sub_bits + 1) * n_sub) + sub

  let bucket_lo b =
    if b < linear_limit then b
    else
      let octave = b / n_sub in
      let sub = b mod n_sub in
      let shift = octave - 1 in
      (n_sub lor sub) lsl shift

  let bucket_hi b =
    if b < linear_limit then b
    else
      let shift = (b / n_sub) - 1 in
      bucket_lo b + (1 lsl shift) - 1

  type h = {
    buckets : int array;
    mutable h_count : int;
    mutable h_sum : int;
    mutable h_min : int;
    mutable h_max : int;
  }

  let create () =
    {
      buckets = Array.make n_buckets 0;
      h_count = 0;
      h_sum = 0;
      h_min = max_int;
      h_max = 0;
    }

  let add h v =
    let v = if v < 0 then 0 else v in
    let b = bucket_of_value v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum + v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v

  let merge_into ~dst src =
    for b = 0 to n_buckets - 1 do
      dst.buckets.(b) <- dst.buckets.(b) + src.buckets.(b)
    done;
    dst.h_count <- dst.h_count + src.h_count;
    dst.h_sum <- dst.h_sum + src.h_sum;
    if src.h_min < dst.h_min then dst.h_min <- src.h_min;
    if src.h_max > dst.h_max then dst.h_max <- src.h_max

  let count h = h.h_count
  let sum h = h.h_sum
  let min_value h = if h.h_count = 0 then 0 else h.h_min
  let max_value h = h.h_max

  let quantile h q =
    if h.h_count = 0 then 0
    else begin
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      (* nearest rank: the smallest bucket whose cumulative count covers
         ceil(q * count), at least 1 *)
      let rank =
        let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
        if r < 1 then 1 else r
      in
      let acc = ref 0 and b = ref 0 and found = ref (n_buckets - 1) in
      (try
         while !b < n_buckets do
           acc := !acc + h.buckets.(!b);
           if !acc >= rank then begin
             found := !b;
             raise Exit
           end;
           b := !b + 1
         done
       with Exit -> ());
      (* the covering bucket's upper bound can overshoot the largest
         recorded value (e.g. a single sample); never report a quantile
         above the exact max *)
      min (bucket_hi !found) h.h_max
    end
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type ring = {
  slots : event array;
  mutable writes : int; (* total appends; slot = writes mod capacity *)
  kind_counts : int array;
      (* all-time emissions per kind; survives ring overflow *)
}

type stripe = {
  histos : Histo.h array; (* one per series *)
  counters : int array;
  ring : ring;
}

type t = {
  stripes : stripe array; (* last one is the shared/anon stripe *)
  anon_lock : Mutex.t;
  ring_capacity : int;
  t0_ns : int;
  mutable gauges : (gauge * (unit -> int)) list;
  gauge_lock : Mutex.t;
}

type sink = Null | To of t

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let dummy_event =
  { ev_ns = 0; ev_tid = 0; ev_kind = Ev_split; ev_a = 0; ev_b = 0 }

let make_stripe ring_capacity =
  {
    histos = Array.init n_series (fun _ -> Histo.create ());
    counters = Array.make n_counters 0;
    ring =
      {
        slots = Array.make ring_capacity dummy_event;
        writes = 0;
        kind_counts = Array.make n_kinds 0;
      };
  }

let create ?(stripes = 65) ?(ring_capacity = 256) () =
  if stripes < 1 then invalid_arg "Bw_obs.create: stripes < 1";
  if ring_capacity < 1 then invalid_arg "Bw_obs.create: ring_capacity < 1";
  {
    stripes = Array.init (stripes + 1) (fun _ -> make_stripe ring_capacity);
    anon_lock = Mutex.create ();
    ring_capacity;
    t0_ns = now_ns ();
    gauges = [];
    gauge_lock = Mutex.create ();
  }

let sink t = To t
let enabled = function Null -> false | To _ -> true

let stripe_of r tid =
  let n = Array.length r.stripes - 1 (* private stripes *) in
  if tid >= 0 && tid < n then r.stripes.(tid) else r.stripes.(n)

let observe s ~tid series v =
  match s with
  | Null -> ()
  | To r -> Histo.add (stripe_of r tid).histos.(series_index series) v

let add s ~tid c n =
  match s with
  | Null -> ()
  | To r ->
      let row = (stripe_of r tid).counters in
      let i = counter_index c in
      row.(i) <- row.(i) + n

let incr s ~tid c = add s ~tid c 1

let push_ring r ring kind ~tid ~a ~b =
  let slot = ring.writes mod Array.length ring.slots in
  ring.slots.(slot) <-
    { ev_ns = now_ns () - r.t0_ns; ev_tid = tid; ev_kind = kind; ev_a = a; ev_b = b };
  ring.writes <- ring.writes + 1;
  let k = kind_index kind in
  ring.kind_counts.(k) <- ring.kind_counts.(k) + 1

let event s ~tid kind ~a ~b =
  match s with
  | Null -> ()
  | To r -> push_ring r (stripe_of r tid).ring kind ~tid ~a ~b

let anon_stripe r = r.stripes.(Array.length r.stripes - 1)

let incr_anon s c =
  match s with
  | Null -> ()
  | To r ->
      Mutex.lock r.anon_lock;
      let row = (anon_stripe r).counters in
      let i = counter_index c in
      row.(i) <- row.(i) + 1;
      Mutex.unlock r.anon_lock

let event_anon s kind ~a ~b =
  match s with
  | Null -> ()
  | To r ->
      Mutex.lock r.anon_lock;
      push_ring r (anon_stripe r).ring kind ~tid:(-1) ~a ~b;
      Mutex.unlock r.anon_lock

let register_gauge s g provider =
  match s with
  | Null -> ()
  | To r ->
      Mutex.lock r.gauge_lock;
      r.gauges <- (g, provider) :: List.remove_assoc g r.gauges;
      Mutex.unlock r.gauge_lock

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type histo_summary = {
  hs_series : series;
  hs_count : int;
  hs_sum : int;
  hs_min : int;
  hs_max : int;
  hs_p50 : int;
  hs_p90 : int;
  hs_p99 : int;
}

type snapshot = {
  sn_elapsed_s : float;
  sn_histos : histo_summary list;
  sn_counters : (counter * int) list;
  sn_gauges : (gauge * int) list;
  sn_events : event list;
  sn_event_totals : (event_kind * int) list;
  sn_dropped_events : int;
}

(* One snapshot over any number of registries, as if all their stripes
   belonged to one: histograms and counters merge exactly (bucket layout
   is global), gauges registered in several registries sum, and event
   logs interleave by timestamp. [snapshot r] is the single-registry
   case; the shard router snapshots one registry per shard plus the
   serving layer's and merges them into forest-wide totals. *)
let snapshot_all rs =
  if rs = [] then invalid_arg "Bw_obs.snapshot_all: no registries";
  let iter_stripes f = List.iter (fun r -> Array.iter f r.stripes) rs in
  let merged = Array.init n_series (fun _ -> Histo.create ()) in
  iter_stripes (fun st ->
      Array.iteri (fun i h -> Histo.merge_into ~dst:merged.(i) h) st.histos);
  let histos =
    List.filter_map
      (fun s ->
        let h = merged.(series_index s) in
        if Histo.count h = 0 then None
        else
          Some
            {
              hs_series = s;
              hs_count = Histo.count h;
              hs_sum = Histo.sum h;
              hs_min = Histo.min_value h;
              hs_max = Histo.max_value h;
              hs_p50 = Histo.quantile h 0.50;
              hs_p90 = Histo.quantile h 0.90;
              hs_p99 = Histo.quantile h 0.99;
            })
      all_series
  in
  let counters =
    List.map
      (fun c ->
        let i = counter_index c in
        let total = ref 0 in
        iter_stripes (fun st -> total := !total + st.counters.(i));
        (c, !total))
      all_counters
  in
  let gauges =
    let sampled =
      List.concat_map
        (fun r ->
          Mutex.lock r.gauge_lock;
          let gs = r.gauges in
          Mutex.unlock r.gauge_lock;
          List.rev_map (fun (g, f) -> (g, try f () with _ -> 0)) gs)
        rs
    in
    (* a gauge registered in several registries reports the sum *)
    List.fold_left
      (fun acc (g, v) ->
        if List.mem_assoc g acc then
          List.map (fun (g', v') -> if g' = g then (g', v' + v) else (g', v')) acc
        else acc @ [ (g, v) ])
      [] sampled
  in
  let events = ref [] and dropped = ref 0 in
  iter_stripes (fun st ->
      let ring = st.ring in
      let cap = Array.length ring.slots in
      let w = ring.writes in
      dropped := !dropped + max 0 (w - cap);
      let live = min w cap in
      (* prepend newest..oldest so each stripe's slice ends up in ring
         order; the clock ticks in µs, so a stable sort is what keeps
         same-timestamp bursts in emission order *)
      for i = live - 1 downto 0 do
        events := ring.slots.((w - live + i) mod cap) :: !events
      done);
  let events =
    List.stable_sort (fun a b -> compare a.ev_ns b.ev_ns) !events
  in
  let event_totals =
    List.map
      (fun k ->
        let i = kind_index k in
        let total = ref 0 in
        iter_stripes (fun st -> total := !total + st.ring.kind_counts.(i));
        (k, !total))
      all_kinds
  in
  let elapsed =
    List.fold_left
      (fun acc r -> Float.max acc (float_of_int (now_ns () - r.t0_ns) /. 1e9))
      0.0 rs
  in
  {
    sn_elapsed_s = elapsed;
    sn_histos = histos;
    sn_counters = counters;
    sn_gauges = gauges;
    sn_events = events;
    sn_event_totals = event_totals;
    sn_dropped_events = !dropped;
  }

let snapshot r = snapshot_all [ r ]

let pp_snapshot ppf sn =
  let open Format in
  fprintf ppf "@[<v>== metrics snapshot (%.2fs) ==" sn.sn_elapsed_s;
  if sn.sn_histos <> [] then begin
    fprintf ppf "@,histograms:";
    List.iter
      (fun h ->
        fprintf ppf
          "@,  %-18s %-5s count=%-8d p50=%-10d p90=%-10d p99=%-10d max=%-10d \
           mean=%.1f"
          (series_name h.hs_series)
          (series_unit h.hs_series)
          h.hs_count h.hs_p50 h.hs_p90 h.hs_p99 h.hs_max
          (float_of_int h.hs_sum /. float_of_int (max 1 h.hs_count)))
      sn.sn_histos
  end;
  fprintf ppf "@,counters:";
  List.iter
    (fun (c, v) -> fprintf ppf "@,  %-18s %d" (counter_name c) v)
    sn.sn_counters;
  if sn.sn_gauges <> [] then begin
    fprintf ppf "@,gauges:";
    List.iter
      (fun (g, v) -> fprintf ppf "@,  %-18s %d" (gauge_name g) v)
      sn.sn_gauges
  end;
  fprintf ppf "@,events: %d kept, %d dropped |"
    (List.length sn.sn_events)
    sn.sn_dropped_events;
  List.iter
    (fun (k, n) ->
      if n > 0 then fprintf ppf " %s=%d" (event_kind_name k) n)
    sn.sn_event_totals;
  List.iter
    (fun e ->
      fprintf ppf "@,  [%12dns] tid %2d %-13s a=%d b=%d" e.ev_ns e.ev_tid
        (event_kind_name e.ev_kind)
        e.ev_a e.ev_b)
    sn.sn_events;
  fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type v =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let to_string v =
    let buf = Buffer.create 1024 in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Int i -> Buffer.add_string buf (string_of_int i)
      | Float f ->
          if Float.is_integer f && Float.abs f < 1e15 then
            Buffer.add_string buf (Printf.sprintf "%.1f" f)
          else Buffer.add_string buf (Printf.sprintf "%.17g" f)
      | Str s ->
          Buffer.add_char buf '"';
          escape buf s;
          Buffer.add_char buf '"'
      | Arr xs ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_char buf ',';
              go x)
            xs;
          Buffer.add_char buf ']'
      | Obj fields ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, x) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_char buf '"';
              escape buf k;
              Buffer.add_string buf "\":";
              go x)
            fields;
          Buffer.add_char buf '}'
    in
    go v;
    Buffer.contents buf

  exception Parse_error of int * string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = pos := !pos + 1 in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* encode as UTF-8 (surrogate pairs are not recombined;
                 snapshot output never emits them) *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> fail "unknown escape");
          go ()
        end
        else if Char.code c < 0x20 then fail "control character in string"
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      if peek () = Some '-' then advance ();
      let digits () =
        let seen = ref false in
        let rec go () =
          match peek () with
          | Some ('0' .. '9') ->
              seen := true;
              advance ();
              go ()
          | _ -> ()
        in
        go ();
        if not !seen then fail "expected digit"
      in
      digits ();
      if peek () = Some '.' then begin
        is_float := true;
        advance ();
        digits ()
      end;
      (match peek () with
      | Some ('e' | 'E') ->
          is_float := true;
          advance ();
          (match peek () with
          | Some ('+' | '-') -> advance ()
          | _ -> ());
          digits ()
      | _ -> ());
      let text = String.sub s start (!pos - start) in
      if !is_float then Float (float_of_string text)
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> Float (float_of_string text)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or } in object"
            in
            Obj (fields [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ] in array"
            in
            Arr (elems [])
          end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character %C" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error (off, msg) ->
        Error (Printf.sprintf "offset %d: %s" off msg)

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None
end

let histo_json ?prefix h =
  let open Json in
  let name =
    match prefix with
    | None -> series_name h.hs_series
    | Some p -> p ^ "_" ^ series_name h.hs_series
  in
  Obj
    [
      ("name", Str name);
      ("unit", Str (series_unit h.hs_series));
      ("count", Int h.hs_count);
      ("sum", Int h.hs_sum);
      ("min", Int h.hs_min);
      ("max", Int h.hs_max);
      ("p50", Int h.hs_p50);
      ("p90", Int h.hs_p90);
      ("p99", Int h.hs_p99);
    ]

let snapshot_json sn =
  let open Json in
  let histo h = histo_json h in
  let event e =
    Obj
      [
        ("ns", Int e.ev_ns);
        ("tid", Int e.ev_tid);
        ("kind", Str (event_kind_name e.ev_kind));
        ("a", Int e.ev_a);
        ("b", Int e.ev_b);
      ]
  in
  let kind_totals =
    List.filter_map
      (fun (k, n) ->
        if n = 0 then None else Some (event_kind_name k, Int n))
      sn.sn_event_totals
  in
  Obj
    [
      ("elapsed_s", Float sn.sn_elapsed_s);
      ("histograms", Arr (List.map histo sn.sn_histos));
      ( "counters",
        Obj
          (List.map (fun (c, v) -> (counter_name c, Int v)) sn.sn_counters) );
      ( "gauges",
        Obj (List.map (fun (g, v) -> (gauge_name g, Int v)) sn.sn_gauges) );
      ( "events",
        Obj
          [
            ("dropped", Int sn.sn_dropped_events);
            ("kinds", Obj kind_totals);
            ("log", Arr (List.map event sn.sn_events));
          ] );
    ]

let snapshot_to_string sn = Json.to_string (snapshot_json sn)

(* The merged snapshot's JSON with every labeled shard's non-empty
   series appended under "<label>_<name>" keys. The unprefixed entries
   stay exact forest-wide totals, so consumers of the single-tree schema
   (json_check, dashboards) keep working; the prefixed ones expose the
   per-shard breakdown. Zero shard counters are elided — the merged
   object already lists every counter. *)
let sharded_snapshot_json ~shards merged =
  let open Json in
  let pfx lbl s = lbl ^ "_" ^ s in
  let extra_histos =
    List.concat_map
      (fun (lbl, sn) -> List.map (fun h -> histo_json ~prefix:lbl h) sn.sn_histos)
      shards
  in
  let extra_counters =
    List.concat_map
      (fun (lbl, sn) ->
        List.filter_map
          (fun (c, v) ->
            if v = 0 then None else Some (pfx lbl (counter_name c), Int v))
          sn.sn_counters)
      shards
  in
  let extra_gauges =
    List.concat_map
      (fun (lbl, sn) ->
        List.map (fun (g, v) -> (pfx lbl (gauge_name g), Int v)) sn.sn_gauges)
      shards
  in
  match snapshot_json merged with
  | Obj fields ->
      Obj
        (List.map
           (function
             | "histograms", Arr hs -> ("histograms", Arr (hs @ extra_histos))
             | "counters", Obj cs -> ("counters", Obj (cs @ extra_counters))
             | "gauges", Obj gs -> ("gauges", Obj (gs @ extra_gauges))
             | kv -> kv)
           fields)
  | v -> v

let sharded_snapshot_to_string ~shards merged =
  Json.to_string (sharded_snapshot_json ~shards merged)
