(** Cluster partition metadata: the slice space, uniform stride
    partitions, and the versioned partition table.

    Every component that answers "who owns this key" — the in-process
    forest router ({!Bw_shard}), the client-side cluster router, the
    per-request ownership gate in the server — works over the same
    coordinate system: a key's first 8-byte big-endian slice, read as an
    unsigned 64-bit integer ({!Slice}). Shard/node ranges are intervals
    of that slice space, so they are total over all keys and
    order-consistent: cross-shard scans continue at interval floors.

    {!Uniform} is the stride arithmetic extracted from the original
    [Bw_shard.Part]: n equal ranges over a slice interval, O(1) lookup
    by unsigned division. {!Table} is its cluster-level generalization —
    an explicit sorted list of range → endpoint assignments stamped with
    an [epoch], carrying a wire codec so the table itself travels
    between nodes. Lookups against a cached table are always safe to
    act on because the owning server re-validates ownership per request
    (publish-then-validate, the same discipline the epoch manager uses
    for reclamation): a stale cache costs a redirect, never a wrong
    answer. *)

(* ------------------------------------------------------------------ *)
(* Slice coordinates                                                   *)
(* ------------------------------------------------------------------ *)

module Slice = struct
  (* A slice is a key's position in the unsigned 64-bit coordinate
     space: the first 8 bytes of its binary-comparable encoding, read
     big-endian and zero-padded past the end. Lexicographic key order
     and unsigned slice order agree on the first 8 bytes, which is what
     makes interval routing order-consistent. *)

  let of_binary s = Bw_util.Key_codec.slice64 s 0

  (* Key_codec.of_int writes the 8-byte big-endian form of
     [k lxor min_int64]; its first slice read back unsigned is exactly
     that value, so int keys route without encoding. *)
  let of_int k = Int64.logxor (Int64.of_int k) Int64.min_int

  (* The smallest binary key at or above slice [u]: its 8-byte
     big-endian image with trailing zero bytes stripped, so short keys
     above the boundary still compare >= it. Every key below [u]'s
     floor has a slice < [u] and vice versa — the floor exactly
     partitions the key space, which is what scan continuation needs. *)
  let floor_binary (u : int64) =
    if u = 0L then ""
    else begin
      let b = Bytes.create 8 in
      Bytes.set_int64_be b 0 u;
      let len = ref 8 in
      while !len > 0 && Bytes.get b (!len - 1) = '\000' do
        decr len
      done;
      Bytes.sub_string b 0 !len
    end

  (* The smallest int key at or above slice [u], clamped to the int
     range (OCaml ints cover only the middle half of the slice
     space). *)
  let floor_int (u : int64) =
    let k64 = Int64.logxor u Int64.min_int in
    if Int64.compare k64 (Int64.of_int min_int) < 0 then min_int
    else if Int64.compare k64 (Int64.of_int max_int) > 0 then max_int
    else Int64.to_int k64

  let compare = Int64.unsigned_compare

  (* [in_range u ~lo ~hi]: lo <= u < hi, with [hi = None] meaning the
     end of the slice space. *)
  let in_range u ~lo ~hi =
    compare lo u <= 0
    && match hi with None -> true | Some h -> compare u h < 0
end

(* ------------------------------------------------------------------ *)
(* Uniform stride partitions                                           *)
(* ------------------------------------------------------------------ *)

module Uniform = struct
  (* The partitioned slice interval starts at [lo]; [stride] is
     ceil(range / n) so that lo + n * stride covers the whole interval:
     every in-range slice value minus [lo], divided by the stride, lands
     in [0, n). Slices below [lo] belong to range 0 and slices at or
     past the end to range n-1, so out-of-range keys still route
     consistently with key order. Unused (and 0) when n = 1. *)
  type t = { n : int; lo : int64; stride : int64 }

  (* [range] is the interval width as an unsigned 64-bit count, with 0
     meaning the full 2^64 slice space (which wraps to 0). *)
  let of_range n lo range =
    if n < 1 then invalid_arg "Bw_cluster.Uniform: shard count < 1";
    let stride =
      if n = 1 then 0L
      else if range = 0L then
        Int64.add (Int64.unsigned_div Int64.minus_one (Int64.of_int n)) 1L
      else
        (* floor((range-1)/n) + 1 = ceil(range/n) without overflow *)
        Int64.add
          (Int64.unsigned_div (Int64.sub range 1L) (Int64.of_int n))
          1L
    in
    { n; lo; stride }

  let make ?(lo = "") ?hi n =
    let lo_s = Slice.of_binary lo in
    let range =
      match hi with
      | None -> Int64.neg lo_s (* 2^64 - lo; wraps to 0 when lo = "" *)
      | Some hi ->
          let hi_s = Slice.of_binary hi in
          if Int64.unsigned_compare hi_s lo_s <= 0 then
            invalid_arg "Bw_cluster.Uniform.make: hi must be > lo";
          Int64.sub hi_s lo_s
    in
    of_range n lo_s range

  (* OCaml's 63-bit ints occupy only the middle half of the slice
     space, so a full-space partition would leave half the ranges
     empty; partition the inclusive [lo, hi] int range instead (the
     default covers every int; its width 2^63 is the bit pattern of
     Int64.min_int). *)
  let make_int ?(lo = min_int) ?(hi = max_int) n =
    if lo >= hi then invalid_arg "Bw_cluster.Uniform.make_int: hi must be > lo";
    of_range n (Slice.of_int lo)
      (Int64.add (Int64.sub (Slice.of_int hi) (Slice.of_int lo)) 1L)

  let count t = t.n

  let of_slice t (u : int64) =
    if t.n = 1 then 0
    else if Int64.unsigned_compare u t.lo < 0 then 0
    else
      let s = Int64.to_int (Int64.unsigned_div (Int64.sub u t.lo) t.stride) in
      if s >= t.n then t.n - 1 else s

  let floor_slice t i = Int64.add t.lo (Int64.mul (Int64.of_int i) t.stride)
end

(* ------------------------------------------------------------------ *)
(* Versioned partition table                                           *)
(* ------------------------------------------------------------------ *)

module Table = struct
  type endpoint = {
    ep_host : string;
    ep_port : int;
    ep_replica : (string * int) option;
        (* a warm standby following this endpoint; routers may fan
           reads out to it *)
  }

  (* [lows]/[owners] describe assignments: assignment [i] covers slices
     [lows.(i), lows.(i+1)) (the last one runs to the end of the slice
     space) and is owned by endpoint [owners.(i)]. Invariants, enforced
     by every constructor: [lows.(0) = 0] so the table is total over
     all keys, lows strictly ascending unsigned, owners in range, and
     adjacent assignments never share an owner (normalized) — so the
     assignment containing a key is the owner's whole contiguous range,
     which is what scan clipping and migration validation lean on. *)
  type t = {
    epoch : int64;
    endpoints : endpoint array;
    lows : int64 array;
    owners : int array;
  }

  let epoch t = t.epoch
  let endpoints t = t.endpoints
  let n_endpoints t = Array.length t.endpoints
  let n_ranges t = Array.length t.lows
  let endpoint t i = t.endpoints.(i)

  let invalid fmt = Printf.ksprintf invalid_arg fmt

  (* Merge adjacent same-owner assignments (constructors may produce
     them after a move re-unites a split range). *)
  let normalize ~epoch ~endpoints lows owners =
    let n = Array.length lows in
    let keep = Array.make n true in
    let kept = ref 0 in
    for i = 0 to n - 1 do
      if i > 0 && owners.(i) = owners.(i - 1) then keep.(i) <- false
      else incr kept
    done;
    let lows' = Array.make !kept 0L and owners' = Array.make !kept 0 in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        lows'.(!j) <- lows.(i);
        owners'.(!j) <- owners.(i);
        incr j
      end
    done;
    { epoch; endpoints; lows = lows'; owners = owners' }

  let make ~epoch ~endpoints ~lows ~owners =
    let n = Array.length lows in
    if n = 0 then invalid "Bw_cluster.Table: no ranges";
    if Array.length owners <> n then
      invalid "Bw_cluster.Table: %d lows but %d owners" n (Array.length owners);
    if Array.length endpoints = 0 then invalid "Bw_cluster.Table: no endpoints";
    if lows.(0) <> 0L then
      invalid "Bw_cluster.Table: first range must start at slice 0";
    for i = 0 to n - 1 do
      if i > 0 && Int64.unsigned_compare lows.(i - 1) lows.(i) >= 0 then
        invalid "Bw_cluster.Table: range lows not strictly ascending";
      if owners.(i) < 0 || owners.(i) >= Array.length endpoints then
        invalid "Bw_cluster.Table: owner %d out of range" owners.(i)
    done;
    normalize ~epoch ~endpoints lows owners

  (* The cluster bootstrap table: [u]'s uniform ranges assigned to the
     endpoints in order. Every node computes the same table from the
     same flags, so a fleet boots with agreeing epoch-1 tables without
     a coordination service. *)
  let of_uniform ~epoch endpoints (u : Uniform.t) =
    let n = Uniform.count u in
    if n <> Array.length endpoints then
      invalid "Bw_cluster.Table.of_uniform: %d ranges for %d endpoints" n
        (Array.length endpoints);
    let lows =
      Array.init n (fun i -> if i = 0 then 0L else Uniform.floor_slice u i)
    in
    make ~epoch ~endpoints ~lows ~owners:(Array.init n (fun i -> i))

  (* Index of the assignment containing slice [u]: greatest [i] with
     [lows.(i) <= u]; always defined because [lows.(0) = 0]. *)
  let locate t (u : int64) =
    let lo = ref 0 and hi = ref (Array.length t.lows - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if Int64.unsigned_compare t.lows.(mid) u <= 0 then lo := mid
      else hi := mid - 1
    done;
    !lo

  let owner t u = t.owners.(locate t u)
  let owner_binary t k = owner t (Slice.of_binary k)
  let owner_int t k = owner t (Slice.of_int k)

  (* Bounds of assignment [i]; [hi = None] is the end of the slice
     space. *)
  let bounds t i =
    ( t.lows.(i),
      if i + 1 < Array.length t.lows then Some t.lows.(i + 1) else None )

  (* The containing assignment of [u] as (owner, lo, hi). *)
  let range_of t u =
    let i = locate t u in
    let lo, hi = bounds t i in
    (t.owners.(i), lo, hi)

  (* [hi] of the assignment containing [u] — where a clipped scan must
     continue. *)
  let next_boundary t u = snd (bounds t (locate t u))

  (* The table after moving [lo, hi) to endpoint [dst]: containing
     assignments split as needed, the moved interval reassigned, the
     result renormalized, and the epoch bumped — the new table a
     migration publishes. *)
  let with_range_moved t ~lo ~hi ~dst =
    if dst < 0 || dst >= Array.length t.endpoints then
      invalid "Bw_cluster.Table.with_range_moved: bad endpoint %d" dst;
    (match hi with
    | Some h when Int64.unsigned_compare h lo <= 0 ->
        invalid "Bw_cluster.Table.with_range_moved: empty range"
    | _ -> ());
    let bounds =
      Array.to_list t.lows @ (lo :: Option.to_list hi)
      |> List.sort_uniq Int64.unsigned_compare
    in
    let lows = Array.of_list bounds in
    let owners =
      Array.map
        (fun b -> if Slice.in_range b ~lo ~hi then dst else owner t b)
        lows
    in
    make ~epoch:(Int64.add t.epoch 1L) ~endpoints:t.endpoints ~lows ~owners

  let equal a b = a = b

  let pp ppf t =
    Format.fprintf ppf "@[<v>epoch %Ld, %d endpoints:" t.epoch
      (Array.length t.endpoints);
    Array.iteri
      (fun i e ->
        Format.fprintf ppf "@,  [%d] %s:%d%s" i e.ep_host e.ep_port
          (match e.ep_replica with
          | None -> ""
          | Some (h, p) -> Printf.sprintf " (replica %s:%d)" h p))
      t.endpoints;
    Format.fprintf ppf "@,%d ranges:" (Array.length t.lows);
    Array.iteri
      (fun i l ->
        let hi =
          if i + 1 < Array.length t.lows then
            Printf.sprintf "0x%016Lx" t.lows.(i + 1)
          else "end"
        in
        Format.fprintf ppf "@,  [0x%016Lx, %s) -> %d" l hi t.owners.(i))
      t.lows;
    Format.fprintf ppf "@]"

  let to_string t = Format.asprintf "%a" pp t

  (* ---- wire codec ----

     The table travels as an opaque string inside TOPOLOGY frames.
     Scalars reuse {!Pagestore.Codec} (8-byte LE ints, length-prefixed
     strings); slice boundaries and the epoch are genuine 64-bit
     values, encoded raw LE. [decode] raises [Failure] on truncation or
     an invariant violation, matching the codec's own convention so the
     wire layer can narrow it to its Malformed exception. *)

  module C = Pagestore.Codec

  let max_endpoints = 4096
  let max_ranges = 65_536

  let encode_i64 buf (x : int64) = Buffer.add_int64_le buf x

  let decode_i64 s ~pos =
    if !pos + 8 > String.length s then failwith "Table: truncated int64";
    let v = String.get_int64_le s !pos in
    pos := !pos + 8;
    v

  let encode t =
    let buf = Buffer.create 128 in
    encode_i64 buf t.epoch;
    C.encode_int buf (Array.length t.endpoints);
    Array.iter
      (fun e ->
        C.encode_string buf e.ep_host;
        C.encode_int buf e.ep_port;
        match e.ep_replica with
        | None -> Buffer.add_char buf '\000'
        | Some (h, p) ->
            Buffer.add_char buf '\001';
            C.encode_string buf h;
            C.encode_int buf p)
      t.endpoints;
    C.encode_int buf (Array.length t.lows);
    Array.iter (fun l -> encode_i64 buf l) t.lows;
    Array.iter (fun o -> C.encode_int buf o) t.owners;
    Buffer.contents buf

  let decode s =
    let pos = ref 0 in
    let byte () =
      if !pos >= String.length s then failwith "Table: truncated byte";
      let b = s.[!pos] in
      incr pos;
      b
    in
    let epoch = decode_i64 s ~pos in
    let ne = C.decode_int s ~pos in
    if ne < 1 || ne > max_endpoints then
      failwith (Printf.sprintf "Table: bad endpoint count %d" ne);
    let endpoints =
      Array.init ne (fun _ ->
          let ep_host = C.decode_string s ~pos in
          let ep_port = C.decode_int s ~pos in
          if ep_port < 0 || ep_port > 65_535 then
            failwith (Printf.sprintf "Table: bad port %d" ep_port);
          let ep_replica =
            match byte () with
            | '\000' -> None
            | '\001' ->
                let h = C.decode_string s ~pos in
                let p = C.decode_int s ~pos in
                if p < 0 || p > 65_535 then
                  failwith (Printf.sprintf "Table: bad replica port %d" p);
                Some (h, p)
            | c -> failwith (Printf.sprintf "Table: bad replica tag %C" c)
          in
          { ep_host; ep_port; ep_replica })
    in
    let nr = C.decode_int s ~pos in
    if nr < 1 || nr > max_ranges then
      failwith (Printf.sprintf "Table: bad range count %d" nr);
    let lows = Array.init nr (fun _ -> decode_i64 s ~pos) in
    let owners = Array.init nr (fun _ -> C.decode_int s ~pos) in
    if !pos <> String.length s then
      failwith
        (Printf.sprintf "Table: %d trailing bytes" (String.length s - !pos));
    match make ~epoch ~endpoints ~lows ~owners with
    | t -> t
    | exception Invalid_argument m -> failwith m
end
