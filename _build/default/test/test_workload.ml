(* Tests for the YCSB-style workload generator. *)

module W = Workload

let cfg = { W.default_config with num_keys = 1_000; num_ops = 10_000 }

let test_mix_parsing () =
  Alcotest.(check bool) "a" true (W.mix_of_string "a" = Some W.Read_update);
  Alcotest.(check bool) "ycsb-c" true
    (W.mix_of_string "ycsb-c" = Some W.Read_only);
  Alcotest.(check bool) "e" true (W.mix_of_string "e" = Some W.Scan_insert);
  Alcotest.(check bool) "insert" true
    (W.mix_of_string "insert" = Some W.Insert_only);
  Alcotest.(check bool) "junk" true (W.mix_of_string "junk" = None)

let test_key_mappers () =
  Alcotest.(check int) "mono identity" 42 (W.Keys.mono_int 42);
  Alcotest.(check bool) "rand distinct" true
    (W.Keys.rand_int 1 <> W.Keys.rand_int 2);
  Alcotest.(check int) "rand deterministic" (W.Keys.rand_int 7)
    (W.Keys.rand_int 7);
  Alcotest.(check bool) "rand non-negative" true (W.Keys.rand_int 123 >= 0)

let test_rand_int_injective_sample () =
  let seen = Hashtbl.create 4096 in
  for i = 0 to 100_000 do
    let k = W.Keys.rand_int i in
    Alcotest.(check bool) "no collision in 100k" false (Hashtbl.mem seen k);
    Hashtbl.add seen k ()
  done

let test_email_shape () =
  for i = 0 to 1_000 do
    let e = W.Keys.email i in
    Alcotest.(check int) "fixed 32 bytes" 32 (String.length e);
    Alcotest.(check bool) "has @" true (String.contains e '@')
  done;
  Alcotest.(check bool) "distinct" true (W.Keys.email 1 <> W.Keys.email 2);
  Alcotest.(check string) "deterministic" (W.Keys.email 5) (W.Keys.email 5)

let test_email_distinct_corpus () =
  let seen = Hashtbl.create 4096 in
  for i = 0 to 50_000 do
    Hashtbl.replace seen (W.Keys.email i) ()
  done;
  Alcotest.(check int) "50k distinct emails" 50_001 (Hashtbl.length seen)

let test_load_trace () =
  let trace = W.load_trace cfg W.Mono_int (W.int_key_of W.Mono_int) in
  Alcotest.(check int) "length" cfg.num_keys (Array.length trace);
  Array.iteri
    (fun i (k, _) -> Alcotest.(check int) "ascending mono" i k)
    trace

let test_ops_trace_determinism () =
  let a = W.ops_trace cfg W.Rand_int W.Read_update ~tid:0 ~nthreads:2
      (W.int_key_of W.Rand_int) in
  let b = W.ops_trace cfg W.Rand_int W.Read_update ~tid:0 ~nthreads:2
      (W.int_key_of W.Rand_int) in
  Alcotest.(check bool) "same trace" true (a = b);
  let c = W.ops_trace cfg W.Rand_int W.Read_update ~tid:1 ~nthreads:2
      (W.int_key_of W.Rand_int) in
  Alcotest.(check bool) "different thread, different trace" true (a <> c)

let count p ops = Array.fold_left (fun n op -> if p op then n + 1 else n) 0 ops

let test_mix_ratios () =
  let ops = W.ops_trace { cfg with num_ops = 40_000 } W.Rand_int W.Read_update
      ~tid:0 ~nthreads:1 (W.int_key_of W.Rand_int) in
  let reads = count (function W.Read _ -> true | _ -> false) ops in
  let updates = count (function W.Update _ -> true | _ -> false) ops in
  Alcotest.(check int) "only reads and updates" (Array.length ops)
    (reads + updates);
  let frac = float_of_int reads /. float_of_int (Array.length ops) in
  Alcotest.(check bool) "roughly 50/50" true (frac > 0.45 && frac < 0.55)

let test_scan_insert_ratio () =
  let ops = W.ops_trace { cfg with num_ops = 40_000 } W.Rand_int W.Scan_insert
      ~tid:0 ~nthreads:1 (W.int_key_of W.Rand_int) in
  let scans = count (function W.Scan _ -> true | _ -> false) ops in
  let inserts = count (function W.Insert _ -> true | _ -> false) ops in
  Alcotest.(check int) "only scans and inserts" (Array.length ops)
    (scans + inserts);
  let frac = float_of_int inserts /. float_of_int (Array.length ops) in
  Alcotest.(check bool) "about 5% inserts" true (frac > 0.03 && frac < 0.07);
  (* average scan length should be near scan_max/2 = 48 *)
  let total_len =
    Array.fold_left
      (fun acc -> function W.Scan (_, n) -> acc + n | _ -> acc)
      0 ops
  in
  let avg = float_of_int total_len /. float_of_int scans in
  Alcotest.(check bool) "avg scan length near 48" true
    (avg > 40.0 && avg < 56.0)

let test_insert_keys_fresh_and_partitioned () =
  let nthreads = 4 in
  let traces =
    List.init nthreads (fun tid ->
        W.ops_trace cfg W.Mono_int W.Insert_only ~tid ~nthreads
          (W.int_key_of W.Mono_int))
  in
  let seen = Hashtbl.create 1024 in
  List.iter
    (Array.iter (function
      | W.Insert (k, _) ->
          Alcotest.(check bool) "beyond loaded range" true (k >= cfg.num_keys);
          Alcotest.(check bool) "no cross-thread collision" false
            (Hashtbl.mem seen k);
          Hashtbl.add seen k ()
      | _ -> Alcotest.fail "insert-only trace has non-insert"))
    traces

let test_zipf_skew_in_reads () =
  let ops = W.ops_trace { cfg with num_ops = 50_000 } W.Mono_int W.Read_only
      ~tid:0 ~nthreads:1 (W.int_key_of W.Mono_int) in
  let hits = Hashtbl.create 1024 in
  Array.iter
    (function
      | W.Read k ->
          Hashtbl.replace hits k (1 + Option.value ~default:0
                                    (Hashtbl.find_opt hits k))
      | _ -> ())
    ops;
  let counts = Hashtbl.fold (fun _ c acc -> c :: acc) hits [] in
  let max_c = List.fold_left max 0 counts in
  let avg = 50_000 / cfg.num_keys in
  Alcotest.(check bool) "zipfian hot key" true (max_c > 5 * avg)

let test_hc_generator () =
  let nthreads = 4 in
  let hc = W.Hc.create ~nthreads in
  let seen = Hashtbl.create 1024 in
  let per_thread_last = Array.make nthreads (-1) in
  for _ = 1 to 1_000 do
    for tid = 0 to nthreads - 1 do
      let k = W.Hc.next hc ~tid in
      Alcotest.(check bool) "unique" false (Hashtbl.mem seen k);
      Hashtbl.add seen k ();
      Alcotest.(check bool) "per-thread increasing" true
        (k > per_thread_last.(tid));
      per_thread_last.(tid) <- k;
      Alcotest.(check int) "tid in low bits" tid (k land (nthreads - 1))
    done
  done

let test_trace_io_int_roundtrip () =
  let cfg' = { cfg with num_ops = 500 } in
  let ops =
    W.ops_trace cfg' W.Rand_int W.Scan_insert ~tid:0 ~nthreads:1
      (W.int_key_of W.Rand_int)
  in
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  W.Trace_io.save_int path ops;
  let ops' = W.Trace_io.load_int path in
  Alcotest.(check bool) "roundtrip" true (ops = ops')

let test_trace_io_string_roundtrip () =
  let ops =
    [|
      W.Insert ("key with spaces? no: hex", 1);
      W.Read "\x00\xffbinary";
      W.Update ("", 2);
      W.Scan ("start", 48);
    |]
  in
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  W.Trace_io.save_string path ops;
  let ops' = W.Trace_io.load_string path in
  Alcotest.(check bool) "roundtrip" true (ops = ops')

let test_trace_io_malformed () =
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc "bogus line\n";
  close_out oc;
  Alcotest.check_raises "malformed"
    (Failure "Workload.Trace_io: malformed line: bogus line") (fun () ->
      ignore (W.Trace_io.load_int path))

let test_int_key_of_email_rejected () =
  Alcotest.check_raises "email via int_key_of"
    (Invalid_argument "Workload.int_key_of: Email keys are strings")
    (fun () -> ignore (W.int_key_of W.Email 3))

let () =
  Alcotest.run "workload"
    [
      ( "keys",
        [
          Alcotest.test_case "mix parsing" `Quick test_mix_parsing;
          Alcotest.test_case "mappers" `Quick test_key_mappers;
          Alcotest.test_case "rand injective" `Slow
            test_rand_int_injective_sample;
          Alcotest.test_case "email shape" `Quick test_email_shape;
          Alcotest.test_case "email distinct" `Slow test_email_distinct_corpus;
          Alcotest.test_case "email via int rejected" `Quick
            test_int_key_of_email_rejected;
        ] );
      ( "traces",
        [
          Alcotest.test_case "load trace" `Quick test_load_trace;
          Alcotest.test_case "determinism" `Quick test_ops_trace_determinism;
          Alcotest.test_case "read/update ratio" `Quick test_mix_ratios;
          Alcotest.test_case "scan/insert ratio" `Quick test_scan_insert_ratio;
          Alcotest.test_case "fresh partitioned inserts" `Quick
            test_insert_keys_fresh_and_partitioned;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew_in_reads;
        ] );
      ( "high-contention",
        [ Alcotest.test_case "hc generator" `Quick test_hc_generator ] );
      ( "trace-io",
        [
          Alcotest.test_case "int roundtrip" `Quick test_trace_io_int_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick
            test_trace_io_string_roundtrip;
          Alcotest.test_case "malformed" `Quick test_trace_io_malformed;
        ] );
    ]
