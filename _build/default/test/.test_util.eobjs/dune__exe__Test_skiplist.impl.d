test/test_skiplist.ml: Alcotest Array Atomic Bw_util Domain Fun Index_iface Int Int64 Map Skiplist
