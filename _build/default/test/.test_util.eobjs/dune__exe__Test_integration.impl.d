test/test_integration.ml: Alcotest Array Atomic Bw_util Domain Drivers Harness Int List Map Printf Runner Unix Workload
