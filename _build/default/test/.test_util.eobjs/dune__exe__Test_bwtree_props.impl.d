test/test_bwtree_props.ml: Alcotest Bwtree Gen Index_iface Int List Map QCheck QCheck_alcotest Set
