test/test_art.ml: Alcotest Array Art_olc Atomic Bw_util Domain Index_iface Int Int64 List Map Workload
