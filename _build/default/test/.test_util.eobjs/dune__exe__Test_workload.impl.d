test/test_workload.ml: Alcotest Array Filename Fun Hashtbl List Option String Sys Workload
