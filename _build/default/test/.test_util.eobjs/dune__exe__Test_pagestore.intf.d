test/test_pagestore.mli:
