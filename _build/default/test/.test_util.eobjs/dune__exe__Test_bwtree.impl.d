test/test_bwtree.ml: Alcotest Array Buffer Bw_util Bwtree Epoch Format Gen Index_iface Int List Map QCheck QCheck_alcotest Set String Workload
