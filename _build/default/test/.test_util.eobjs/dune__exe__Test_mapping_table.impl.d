test/test_mapping_table.ml: Alcotest Array Atomic Domain Hashtbl Mapping_table String
