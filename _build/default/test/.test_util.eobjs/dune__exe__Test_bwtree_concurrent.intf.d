test/test_bwtree_concurrent.mli:
