test/test_mapping_table.mli:
