test/test_pagestore.ml: Alcotest Array Buffer Bw_util Bwtree Gen Hashtbl Index_iface List Pagestore Printf QCheck QCheck_alcotest String Workload
