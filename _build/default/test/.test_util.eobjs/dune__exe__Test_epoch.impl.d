test/test_epoch.ml: Alcotest Array Domain Epoch Obj Unix
