test/test_bwtree_concurrent.ml: Alcotest Array Atomic Bw_util Bwtree Domain Epoch Index_iface Int64 List Workload
