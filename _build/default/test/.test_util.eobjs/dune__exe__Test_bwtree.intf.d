test/test_bwtree.mli:
