test/test_masstree.mli:
