test/test_bwtree_props.mli:
