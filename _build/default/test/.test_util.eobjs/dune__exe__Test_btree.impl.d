test/test_btree.ml: Alcotest Array Atomic Btree_olc Bw_util Domain Index_iface Int Int64 Map Workload
