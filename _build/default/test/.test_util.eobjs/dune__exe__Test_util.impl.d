test/test_util.ml: Alcotest Array Bw_util Format Fun Hashtbl Int List QCheck QCheck_alcotest String
