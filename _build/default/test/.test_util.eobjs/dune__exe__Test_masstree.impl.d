test/test_masstree.ml: Alcotest Array Bw_util Domain Index_iface Int Int64 List Map Masstree Printf String Workload
