(** Small numerical helpers for reporting results. *)

val mean : float array -> float
val stddev : float array -> float
val median : float array -> float
(** Median of a copy of the input (input is not modified). Raises
    [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], nearest-rank on a sorted
    copy. *)

val throughput_mops : ops:int -> seconds:float -> float
(** Million operations per second. *)

type summary = { n : int; mean : float; stddev : float; min : float; max : float }

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
