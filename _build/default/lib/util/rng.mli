(** Deterministic pseudo-random number generation.

    A small, fast SplitMix64 generator. Every component of this repository
    that needs randomness (workload generation, skip-list towers, property
    tests' fixtures) goes through this module so that runs are reproducible
    from a seed. *)

type t
(** Mutable generator state. Not thread-safe: give each domain its own. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to hand distinct streams to worker domains. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. *)

val next_float : t -> float
(** Uniform in [\[0, 1)]. *)

val next_bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
