(** CRC-32 (ISO 3309 / zlib polynomial) checksums, used by the page store
    to validate log records. *)

val string : ?init:int32 -> string -> int32
val bytes : ?init:int32 -> Bytes.t -> pos:int -> len:int -> int32
