let mean xs =
  if Array.length xs = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n <= 1 then 0.0
  else begin
    let m = mean xs in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (sq /. float_of_int (n - 1))
  end

let sorted_copy xs =
  let a = Array.copy xs in
  Array.sort compare a;
  a

let median xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.median: empty";
  let a = sorted_copy xs in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = sorted_copy xs in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  a.(idx)

let throughput_mops ~ops ~seconds =
  if seconds <= 0.0 then 0.0 else float_of_int ops /. seconds /. 1e6

type summary = { n : int; mean : float; stddev : float; min : float; max : float }

let summarize xs =
  let n = Array.length xs in
  if n = 0 then { n = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0 }
  else
    {
      n;
      mean = mean xs;
      stddev = stddev xs;
      min = Array.fold_left min xs.(0) xs;
      max = Array.fold_left max xs.(0) xs;
    }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f" s.n s.mean
    s.stddev s.min s.max
