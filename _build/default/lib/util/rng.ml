type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state golden_gamma;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  create ~seed

let next_int t bound =
  if bound <= 0 then invalid_arg "Rng.next_int: bound must be positive";
  (* Mask to a non-negative OCaml int, then reduce modulo the bound. The
     modulo bias is negligible for the bounds used here (≪ 2^62). *)
  let raw = Int64.to_int (next_int64 t) land max_int in
  raw mod bound

let next_float t =
  (* 53 high bits → [0,1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let next_bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = next_int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
