lib/util/growable.ml: Array
