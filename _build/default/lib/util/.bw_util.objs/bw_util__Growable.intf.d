lib/util/growable.mli:
