lib/util/rng.mli:
