lib/util/counters.ml: Array Format List
