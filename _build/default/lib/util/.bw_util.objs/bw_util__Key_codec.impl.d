lib/util/key_codec.ml: Bytes Char Int64 String
