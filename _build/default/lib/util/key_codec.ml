let of_int k =
  (* Flip the sign bit so negative ints sort below non-negative ones under
     unsigned byte-wise comparison. *)
  let v = Int64.logxor (Int64.of_int k) Int64.min_int in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Bytes.unsafe_to_string b

let to_int s =
  if String.length s <> 8 then invalid_arg "Key_codec.to_int: need 8 bytes";
  let v = Bytes.get_int64_be (Bytes.unsafe_of_string s) 0 in
  Int64.to_int (Int64.logxor v Int64.min_int)

let of_string s = s

let slice64 s i =
  let off = i * 8 in
  let len = String.length s in
  let v = ref 0L in
  for j = 0 to 7 do
    let byte = if off + j < len then Char.code s.[off + j] else 0 in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int byte)
  done;
  !v

let slice_count s =
  let len = String.length s in
  if len = 0 then 1 else (len + 7) / 8
