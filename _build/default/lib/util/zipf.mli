(** Zipfian-distributed integer sampling, as used by YCSB.

    Implements the rejection-free method of Gray et al. ("Quickly generating
    billion-record synthetic databases", SIGMOD 1994), the same algorithm as
    YCSB's [ZipfianGenerator]. A scrambled variant spreads the hot items
    across the key space like YCSB's [ScrambledZipfianGenerator]. *)

type t

val create : ?theta:float -> n:int -> unit -> t
(** [create ~n ()] prepares a sampler over [\[0, n)] with skew [theta]
    (default 0.99, YCSB's default). [n] must be positive; [theta] must be in
    (0, 1). *)

val sample : t -> Rng.t -> int
(** Draw one value in [\[0, n)]. Item 0 is the most popular. *)

val sample_scrambled : t -> Rng.t -> int
(** Like {!sample} but with popularity ranks hashed across [\[0, n)], so hot
    keys are not clustered at the low end. *)

val n : t -> int
