(** Software performance counters.

    The paper explains its index comparison with hardware counters (L1/L3
    misses, IPC, branches — Table 3). Hardware counters are not available
    here, so the harness counts the *software events that cause them*:
    pointer dereferences (mapping-table lookups, delta-chain hops, node
    descents), key comparisons, allocations, CaS attempts and failures, and
    operation restarts.

    Counters are striped per domain (each domain owns a padded slot) so that
    counting never introduces the very contention it is meant to measure.
    Slot assignment is by the runner's thread id, not [Domain.self], so
    single-domain simulations can still stripe. *)

type event =
  | Pointer_deref  (** chasing one pointer: chain hop, table lookup, child *)
  | Key_compare
  | Allocation     (** allocation of an index node / delta / tower *)
  | Cas_attempt
  | Cas_failure
  | Restart        (** operation aborted and retried from the root *)
  | Node_visit     (** logical node (or trie node) examined *)
  | Epoch_enter    (** epoch protection acquired *)

val n_events : int

type t

val create : max_threads:int -> t

val incr : t -> tid:int -> event -> unit
val add : t -> tid:int -> event -> int -> unit

val read : t -> event -> int
(** Sum over all thread slots. *)

val snapshot : t -> (event * int) list
val reset : t -> unit

val pp_event : Format.formatter -> event -> unit

val global : t
(** A process-wide instance used by index implementations; sized for up to
    64 threads. The harness resets it around measured sections. *)

val enabled : bool ref
(** When false (the default for pure unit tests), {!incr}/{!add} on
    {!global} become no-ops cheaply at the call sites that check it. The
    harness flips it on for counter experiments. *)
