type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2 : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ?(theta = 0.99) ~n () =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta <= 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be in (0, 1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; zeta2 }

let sample t rng =
  let u = Rng.next_float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else
    let v =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    let k = int_of_float v in
    if k >= t.n then t.n - 1 else if k < 0 then 0 else k

(* FNV-1a-style mix used to scatter ranks across the item space. *)
let scramble x n =
  let h = ref 0xCBF29CE484222325L in
  let x = ref (Int64.of_int x) in
  for _ = 0 to 7 do
    let byte = Int64.to_int (Int64.logand !x 0xFFL) in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) 0x100000001B3L;
    x := Int64.shift_right_logical !x 8
  done;
  Int64.to_int (Int64.logand !h (Int64.of_int max_int)) mod n

let sample_scrambled t rng = scramble (sample t rng) t.n

let n t = t.n
