type event =
  | Pointer_deref
  | Key_compare
  | Allocation
  | Cas_attempt
  | Cas_failure
  | Restart
  | Node_visit
  | Epoch_enter

let n_events = 8

let event_index = function
  | Pointer_deref -> 0
  | Key_compare -> 1
  | Allocation -> 2
  | Cas_attempt -> 3
  | Cas_failure -> 4
  | Restart -> 5
  | Node_visit -> 6
  | Epoch_enter -> 7

let all_events =
  [
    Pointer_deref; Key_compare; Allocation; Cas_attempt; Cas_failure;
    Restart; Node_visit; Epoch_enter;
  ]

(* One int array per thread slot, padded to its own row so that hot
   increments from different domains do not share cache lines. *)
let pad = 16

type t = { slots : int array array; max_threads : int }

let create ~max_threads =
  {
    slots = Array.init max_threads (fun _ -> Array.make (n_events * pad) 0);
    max_threads;
  }

let incr t ~tid ev =
  let row = t.slots.(tid mod t.max_threads) in
  let i = event_index ev * pad in
  row.(i) <- row.(i) + 1

let add t ~tid ev n =
  let row = t.slots.(tid mod t.max_threads) in
  let i = event_index ev * pad in
  row.(i) <- row.(i) + n

let read t ev =
  let i = event_index ev * pad in
  Array.fold_left (fun acc row -> acc + row.(i)) 0 t.slots

let snapshot t = List.map (fun ev -> (ev, read t ev)) all_events

let reset t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.slots

let pp_event ppf = function
  | Pointer_deref -> Format.pp_print_string ppf "ptr-deref"
  | Key_compare -> Format.pp_print_string ppf "key-cmp"
  | Allocation -> Format.pp_print_string ppf "alloc"
  | Cas_attempt -> Format.pp_print_string ppf "cas"
  | Cas_failure -> Format.pp_print_string ppf "cas-fail"
  | Restart -> Format.pp_print_string ppf "restart"
  | Node_visit -> Format.pp_print_string ppf "node-visit"
  | Epoch_enter -> Format.pp_print_string ppf "epoch-enter"

let global = create ~max_threads:64
let enabled = ref false
