(** Integer histograms for structure statistics (chain lengths, node
    occupancy, scan lengths). *)

type t

val create : unit -> t
val add : t -> int -> unit
val addn : t -> int -> int -> unit

val count : t -> int
(** Number of observations. *)

val total : t -> int
(** Sum of observed values. *)

val mean : t -> float
val min_value : t -> int
(** Raises [Invalid_argument] when empty. *)

val max_value : t -> int
val percentile : t -> float -> int
(** Nearest-rank percentile, [p] in [\[0, 100\]]. *)

val buckets : t -> (int * int) list
(** (value, occurrences), ascending by value. *)

val pp : ?width:int -> Format.formatter -> t -> unit
(** Render an ASCII bar chart, one row per distinct value (values are
    grouped into at most ~20 ranges when the domain is wide). *)
