type t = { tbl : (int, int) Hashtbl.t; mutable count : int; mutable total : int }

let create () = { tbl = Hashtbl.create 64; count = 0; total = 0 }

let addn t v n =
  Hashtbl.replace t.tbl v (n + Option.value ~default:0 (Hashtbl.find_opt t.tbl v));
  t.count <- t.count + n;
  t.total <- t.total + (v * n)

let add t v = addn t v 1
let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let buckets t =
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let nonempty t = if t.count = 0 then invalid_arg "Histogram: empty"

let min_value t =
  nonempty t;
  fst (List.hd (buckets t))

let max_value t =
  nonempty t;
  fst (List.hd (List.rev (buckets t)))

let percentile t p =
  nonempty t;
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile";
  let rank =
    max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.count)))
  in
  let rec go seen = function
    | [] -> max_value t
    | (v, n) :: rest -> if seen + n >= rank then v else go (seen + n) rest
  in
  go 0 (buckets t)

let pp ?(width = 40) ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)@."
  else begin
    let bs = buckets t in
    (* group into at most ~20 ranges *)
    let lo = min_value t and hi = max_value t in
    let span = hi - lo + 1 in
    let step = max 1 ((span + 19) / 20) in
    let grouped = Hashtbl.create 32 in
    List.iter
      (fun (v, n) ->
        let b = (v - lo) / step in
        Hashtbl.replace grouped b
          (n + Option.value ~default:0 (Hashtbl.find_opt grouped b)))
      bs;
    let rows =
      Hashtbl.fold (fun b n acc -> (b, n) :: acc) grouped []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let biggest = List.fold_left (fun m (_, n) -> max m n) 1 rows in
    List.iter
      (fun (b, n) ->
        let from = lo + (b * step) and to_ = min hi (lo + ((b + 1) * step) - 1) in
        let label =
          if step = 1 then Printf.sprintf "%6d" from
          else Printf.sprintf "%5d-%-5d" from to_
        in
        let bar = String.make (max 1 (n * width / biggest)) '#' in
        Format.fprintf ppf "%s | %-7d %s@." label n bar)
      rows
  end
