(** A simulated log-structured flash store (the LLAMA substrate, §2.2/§8).

    The paper emphasizes that the Bw-Tree's mapping table exists not only
    for lock-free in-memory updates but "also serves the purpose of
    supporting log-structured updates when deployed with SSD": node
    pointers can designate flash offsets, and pages are written
    out-of-place to an append-only log. This module is that log, simulated
    in memory (the container has no raw flash): fixed-size segments,
    append-only records with CRC-validated headers, sequential segment
    iteration, and greedy segment garbage collection driven by a
    caller-provided liveness oracle — the mechanics a real deployment
    exercises, minus the device.

    Records never span segments. Offsets are stable logical addresses
    (segment index ⋅ segment size + position) until {!compact} relocates
    live records and invalidates the old addresses via the caller's
    [relocate] callback — exactly how LLAMA fixes up the mapping table. *)

type t

type offset = int
(** Logical address of a record in the log. *)

val create : ?segment_bytes:int -> unit -> t
(** Default segment size 256 KiB. *)

val append : t -> string -> offset
(** Append one record; returns its address. Raises [Invalid_argument] if
    the payload cannot fit a segment. *)

val read : t -> offset -> string
(** Fetch a record's payload. Raises [Failure] on an invalid address or a
    corrupted record (CRC mismatch). *)

val iter : t -> (offset -> string -> unit) -> unit
(** Visit every record (live and dead) in log order. *)

(** Accounting. *)

val records : t -> int
val bytes_used : t -> int
(** Total bytes occupied, headers included. *)

val segment_count : t -> int
val segment_bytes : t -> int

val compact : t -> live:(offset -> bool) -> relocate:(offset -> offset -> unit) -> int
(** [compact t ~live ~relocate] rewrites the log keeping only records for
    which [live] answers true, calling [relocate old_off new_off] for each
    survivor, and returns the number of bytes reclaimed. Single-threaded
    (the simulated device has one GC context, like a flash FTL). *)

val corrupt_for_testing : t -> offset -> unit
(** Flip a payload byte so that {!read} fails its CRC check. Tests only. *)
