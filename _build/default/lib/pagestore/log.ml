type offset = int

(* Record layout within a segment:
     magic (1 byte, 0xA5) | length (4 bytes LE) | crc32 (4 bytes LE) | payload
   A magic of 0x00 (fresh segment fill) terminates the segment scan. *)

let magic = '\xA5'
let header_bytes = 9

type segment = { buf : Bytes.t; mutable used : int }

type t = {
  segment_bytes : int;
  mutable segments : segment array;
  mutable nrecords : int;
}

let create ?(segment_bytes = 256 * 1024) () =
  if segment_bytes < 64 then invalid_arg "Log.create: segment too small";
  {
    segment_bytes;
    segments = [| { buf = Bytes.make segment_bytes '\x00'; used = 0 } |];
    nrecords = 0;
  }

let segment_count t = Array.length t.segments
let segment_bytes t = t.segment_bytes
let records t = t.nrecords

let bytes_used t =
  Array.fold_left (fun acc s -> acc + s.used) 0 t.segments

let fresh_segment t =
  let s = { buf = Bytes.make t.segment_bytes '\x00'; used = 0 } in
  t.segments <- Array.append t.segments [| s |];
  s

let append t payload =
  let need = header_bytes + String.length payload in
  if need > t.segment_bytes then
    invalid_arg "Log.append: record larger than a segment";
  let seg_idx, seg =
    let last = Array.length t.segments - 1 in
    let s = t.segments.(last) in
    if s.used + need <= t.segment_bytes then (last, s)
    else (last + 1, fresh_segment t)
  in
  let pos = seg.used in
  Bytes.set seg.buf pos magic;
  Bytes.set_int32_le seg.buf (pos + 1) (Int32.of_int (String.length payload));
  Bytes.set_int32_le seg.buf (pos + 5) (Bw_util.Crc32.string payload);
  Bytes.blit_string payload 0 seg.buf (pos + header_bytes)
    (String.length payload);
  seg.used <- pos + need;
  t.nrecords <- t.nrecords + 1;
  (seg_idx * t.segment_bytes) + pos

let decode_at t off =
  let seg_idx = off / t.segment_bytes and pos = off mod t.segment_bytes in
  if seg_idx >= Array.length t.segments then failwith "Log.read: bad address";
  let seg = t.segments.(seg_idx) in
  if pos + header_bytes > seg.used then failwith "Log.read: bad address";
  if Bytes.get seg.buf pos <> magic then failwith "Log.read: bad address";
  let len = Int32.to_int (Bytes.get_int32_le seg.buf (pos + 1)) in
  if len < 0 || pos + header_bytes + len > seg.used then
    failwith "Log.read: bad address";
  let stored_crc = Bytes.get_int32_le seg.buf (pos + 5) in
  let payload = Bytes.sub_string seg.buf (pos + header_bytes) len in
  if Bw_util.Crc32.string payload <> stored_crc then
    failwith "Log.read: corrupted record (crc mismatch)";
  payload

let read = decode_at

let iter t f =
  Array.iteri
    (fun seg_idx seg ->
      let pos = ref 0 in
      while
        !pos + header_bytes <= seg.used && Bytes.get seg.buf !pos = magic
      do
        let off = (seg_idx * t.segment_bytes) + !pos in
        let payload = decode_at t off in
        f off payload;
        pos := !pos + header_bytes + String.length payload
      done)
    t.segments

let compact t ~live ~relocate =
  let before = bytes_used t in
  let survivors = ref [] in
  iter t (fun off payload -> if live off then survivors := (off, payload) :: !survivors);
  let survivors = List.rev !survivors in
  t.segments <- [| { buf = Bytes.make t.segment_bytes '\x00'; used = 0 } |];
  t.nrecords <- 0;
  List.iter
    (fun (old_off, payload) ->
      let new_off = append t payload in
      relocate old_off new_off)
    survivors;
  before - bytes_used t

let corrupt_for_testing t off =
  let seg_idx = off / t.segment_bytes and pos = off mod t.segment_bytes in
  let seg = t.segments.(seg_idx) in
  let target = pos + header_bytes in
  Bytes.set seg.buf target
    (Char.chr (Char.code (Bytes.get seg.buf target) lxor 0xFF))
