lib/pagestore/checkpoint.ml: Array Buffer Bwtree Codec Hashtbl List Log Option String
