lib/pagestore/codec.ml: Buffer Bytes Int64 String
