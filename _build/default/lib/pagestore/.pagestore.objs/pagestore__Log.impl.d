lib/pagestore/log.ml: Array Bw_util Bytes Char Int32 List String
