lib/pagestore/log.mli:
