(** Binary (de)serialization for page payloads. *)

module type CODEC = sig
  type t

  val encode : Buffer.t -> t -> unit
  val decode : string -> pos:int ref -> t
end

let encode_int buf (v : int) =
  Buffer.add_int64_le buf (Int64.of_int v)

let decode_int s ~pos =
  if !pos + 8 > String.length s then failwith "Codec: truncated int";
  let v = Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string s) !pos) in
  pos := !pos + 8;
  v

let encode_string buf s =
  encode_int buf (String.length s);
  Buffer.add_string buf s

let decode_string s ~pos =
  let len = decode_int s ~pos in
  if len < 0 || !pos + len > String.length s then
    failwith "Codec: truncated string";
  let v = String.sub s !pos len in
  pos := !pos + len;
  v

module Int : CODEC with type t = int = struct
  type t = int

  let encode = encode_int
  let decode = decode_int
end

module String : CODEC with type t = string = struct
  type t = string

  let encode = encode_string
  let decode = decode_string
end
