(** Checkpointing a Bw-Tree to the log-structured page store and
    recovering it.

    Real LLAMA [23] writes physical delta/base pages out-of-place and keeps
    flash addresses in the mapping table. Here the checkpoint is logical:
    the tree's contents are consolidated into fixed-size page records (one
    per would-be leaf), a manifest record indexes them, and recovery
    rebuilds a fresh tree by bulk-loading the pages. The substitution
    preserves the behaviours the substrate exists for — out-of-place page
    writes, address indirection through a manifest, CRC-validated reads,
    and segment garbage collection reclaiming superseded checkpoints. *)

module Make
    (KC : Codec.CODEC)
    (VC : Codec.CODEC)
    (T : Bwtree.S with type key = KC.t and type value = VC.t) =
struct
  type manifest = {
    pages : Log.offset array;
    item_count : int;
  }

  let page_tag = 'P'
  let manifest_tag = 'C'

  let encode_page items =
    let buf = Buffer.create 1024 in
    Buffer.add_char buf page_tag;
    Codec.encode_int buf (List.length items);
    List.iter
      (fun (k, v) ->
        KC.encode buf k;
        VC.encode buf v)
      items;
    Buffer.contents buf

  let decode_page payload =
    if String.length payload = 0 || payload.[0] <> page_tag then
      failwith "Checkpoint: not a page record";
    let pos = ref 1 in
    let n = Codec.decode_int payload ~pos in
    List.init n (fun _ ->
        let k = KC.decode payload ~pos in
        let v = VC.decode payload ~pos in
        (k, v))

  let encode_manifest ~pages ~item_count =
    let buf = Buffer.create 256 in
    Buffer.add_char buf manifest_tag;
    Codec.encode_int buf (Array.length pages);
    Array.iter (fun off -> Codec.encode_int buf off) pages;
    Codec.encode_int buf item_count;
    Buffer.contents buf

  let decode_manifest payload =
    if String.length payload = 0 || payload.[0] <> manifest_tag then
      failwith "Checkpoint: not a manifest record";
    let pos = ref 1 in
    let n = Codec.decode_int payload ~pos in
    let pages = Array.init n (fun _ -> Codec.decode_int payload ~pos) in
    let item_count = Codec.decode_int payload ~pos in
    { pages; item_count }

  (* Write a checkpoint of [tree] into [log]; returns the manifest's
     address — the single value a recovery needs (the "root pointer" a
     real system would store in a well-known location). *)
  let save ?(page_items = 128) tree log =
    if page_items <= 0 then invalid_arg "Checkpoint.save: page_items";
    let items = T.scan_all tree () in
    let total = List.length items in
    let pages = ref [] in
    let rec chunk = function
      | [] -> ()
      | items ->
          let rec take n acc = function
            | rest when n = 0 -> (List.rev acc, rest)
            | [] -> (List.rev acc, [])
            | x :: rest -> take (n - 1) (x :: acc) rest
          in
          let page, rest = take page_items [] items in
          pages := Log.append log (encode_page page) :: !pages;
          chunk rest
    in
    chunk items;
    let pages = Array.of_list (List.rev !pages) in
    Log.append log (encode_manifest ~pages ~item_count:total)

  let manifest log off = decode_manifest (Log.read log off)

  (* Rebuild a tree from the checkpoint at [off]. [config] must enable
     non-unique keys if the checkpointed tree did — a checkpoint of a
     non-unique index contains duplicate keys, and restoring it into a
     unique-keys tree would silently drop them (the count check below
     catches that mistake loudly instead). *)
  let load ?config log off =
    let m = manifest log off in
    let tree = T.create ?config () in
    let loaded = ref 0 in
    Array.iter
      (fun page_off ->
        List.iter
          (fun (k, v) -> if T.insert tree k v then incr loaded)
          (decode_page (Log.read log page_off)))
      m.pages;
    if !loaded <> m.item_count then
      failwith "Checkpoint.load: manifest item count mismatch";
    tree

  (* Liveness oracle for {!Log.compact}: only the records reachable from
     the given manifest addresses survive. Returns (live, relocate) where
     [relocate] keeps a mutable table of moved manifests so callers can
     translate their root pointers after compaction. *)
  let gc_roots log manifest_offs =
    let live = Hashtbl.create 64 in
    List.iter
      (fun moff ->
        Hashtbl.replace live moff ();
        Array.iter
          (fun p -> Hashtbl.replace live p ())
          (manifest log moff).pages)
      manifest_offs;
    let moved = Hashtbl.create 64 in
    let is_live off = Hashtbl.mem live off in
    let relocate old_off new_off = Hashtbl.replace moved old_off new_off in
    let translate off = Option.value ~default:off (Hashtbl.find_opt moved off) in
    (is_live, relocate, translate)

  (* Compact the log keeping only the given checkpoints; returns the bytes
     reclaimed and the translated manifest addresses. Page offsets inside
     surviving manifests are rewritten by re-saving the manifest records.

     Note: manifests hold page addresses *by value*, so after relocation
     the old manifest payloads are stale. The straightforward fix used
     here (and by LLAMA's incremental flush) is to re-append fresh
     manifests pointing at the relocated pages. *)
  let compact_keeping log manifest_offs =
    let is_live, relocate, translate = gc_roots log manifest_offs in
    let reclaimed = Log.compact log ~live:is_live ~relocate in
    let fresh =
      List.map
        (fun moff ->
          let m = manifest log (translate moff) in
          let pages = Array.map translate m.pages in
          Log.append log (encode_manifest ~pages ~item_count:m.item_count))
        manifest_offs
    in
    (reclaimed, fresh)
end
