lib/core/bwtree_intf.ml: Epoch Format
