lib/core/bwtree.ml: Array Atomic Bw_util Bwtree_intf Domain Epoch Format Fun List Mapping_table Obj
