(** YCSB-style workload generation (§5.1).

    The paper drives every experiment with four YCSB microbenchmarks over
    three key types:

    - {b Insert-only}: the initialization phase, measured as a workload.
    - {b Read-only} (YCSB-C): point lookups, Zipfian-distributed.
    - {b Read/Update} (YCSB-A): 50% reads / 50% updates, Zipfian.
    - {b Scan/Insert} (YCSB-E): 95% short range scans (average length 48) /
      5% inserts, Zipfian start keys.

    Key spaces: [Mono_int] (monotonically increasing 64-bit integers),
    [Rand_int] (random 64-bit integers), [Email] (synthesized 32-byte
    email-like strings standing in for the paper's proprietary trace), and
    [Mono_hc] — the §6.2 high-contention generator where every thread draws
    strictly increasing keys from a shared clock so all inserts collide on
    the rightmost leaf (an RDTSC substitute).

    Generation is deterministic from the seed. Traces are materialized as
    arrays so that generation cost never pollutes the measured section. *)

type mix = Insert_only | Read_only | Read_update | Scan_insert

val mix_of_string : string -> mix option
val pp_mix : Format.formatter -> mix -> unit

type key_space = Mono_int | Rand_int | Email | Mono_hc

val pp_key_space : Format.formatter -> key_space -> unit

(** One request. ['k] is the concrete key type (int or string). *)
type 'k op =
  | Insert of 'k * int
  | Read of 'k
  | Update of 'k * int
  | Scan of 'k * int  (** start key, scan length *)

type config = {
  num_keys : int;  (** distinct keys loaded before the measured phase *)
  num_ops : int;  (** operations in the measured phase *)
  theta : float;  (** Zipfian skew (YCSB default 0.99) *)
  seed : int64;
  scan_max : int;  (** YCSB-E scan lengths are uniform in [1, scan_max],
                       giving average [scan_max/2] (paper: avg 48) *)
}

val default_config : config

(** Key mapping: index in [0, num_keys) → concrete key. *)
module Keys : sig
  val mono_int : int -> int
  val rand_int : int -> int
  (** A bijective-ish scramble of the index (SplitMix64 finalizer). *)

  val email : int -> string
  (** Fixed 32-byte synthetic email; shares domain/name prefixes across
      indexes like a real trace. *)
end

(** The load phase: the keys to insert, in workload order (mono: ascending;
    rand/email: shuffled), as an array of (key, value). *)
val load_trace : config -> key_space -> (int -> 'k) -> ('k * int) array

(** The measured phase for one worker: [ops_trace cfg space mix ~tid
    ~nthreads conv] returns this worker's private op array. Inserts draw
    fresh keys (beyond [num_keys]) partitioned by thread; reads/updates/
    scan-starts draw Zipfian-scrambled existing keys. *)
val ops_trace :
  config -> key_space -> mix -> tid:int -> nthreads:int -> (int -> 'k) -> 'k op array

(** High-contention key source (§6.2): strictly increasing global counter
    tagged with the thread id in the low bits, so concurrent threads all
    append at the right edge of the index. *)
module Hc : sig
  type t

  val create : nthreads:int -> t
  val next : t -> tid:int -> int
end

val int_key_of : key_space -> int -> int
(** Index → int key for the integer key spaces. Raises on [Email]. *)

val email_key_of : int -> string

(** Persisting traces to disk so experiments are replayable and shareable
    across runs and implementations. One line per operation; keys are
    rendered via the caller's codec (ints in decimal, strings hex-encoded
    by {!Trace_io.save_string}). *)
module Trace_io : sig
  val save_int : string -> int op array -> unit
  val load_int : string -> int op array
  val save_string : string -> string op array -> unit
  val load_string : string -> string op array
end
