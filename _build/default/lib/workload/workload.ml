type mix = Insert_only | Read_only | Read_update | Scan_insert

let mix_of_string = function
  | "insert-only" | "insert" -> Some Insert_only
  | "read-only" | "ycsb-c" | "c" -> Some Read_only
  | "read-update" | "ycsb-a" | "a" -> Some Read_update
  | "scan-insert" | "ycsb-e" | "e" -> Some Scan_insert
  | _ -> None

let pp_mix ppf m =
  Format.pp_print_string ppf
    (match m with
    | Insert_only -> "Insert-only"
    | Read_only -> "Read-only"
    | Read_update -> "Read/Update"
    | Scan_insert -> "Scan/Insert")

type key_space = Mono_int | Rand_int | Email | Mono_hc

let pp_key_space ppf s =
  Format.pp_print_string ppf
    (match s with
    | Mono_int -> "Mono-Int"
    | Rand_int -> "Rand-Int"
    | Email -> "Email"
    | Mono_hc -> "Mono-HC")

type 'k op =
  | Insert of 'k * int
  | Read of 'k
  | Update of 'k * int
  | Scan of 'k * int

type config = {
  num_keys : int;
  num_ops : int;
  theta : float;
  seed : int64;
  scan_max : int;
}

let default_config =
  { num_keys = 100_000; num_ops = 200_000; theta = 0.99; seed = 1L; scan_max = 95 }

module Keys = struct
  let mono_int i = i

  (* SplitMix64 finalizer: a bijection on 64-bit words, so distinct indexes
     give distinct "random" keys (masked to a non-negative OCaml int) *)
  let rand_int i =
    let open Int64 in
    let z = add (of_int i) 0x9E3779B97F4A7C15L in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = logxor z (shift_right_logical z 31) in
    Int64.to_int z land Stdlib.max_int

  let names =
    [| "alice"; "bob"; "carol"; "dave"; "erin"; "frank"; "grace"; "heidi";
       "ivan"; "judy"; "mallory"; "niaj"; "olivia"; "peggy"; "rupert";
       "sybil"; "trent"; "victor"; "walter"; "yolanda" |]

  let domains =
    [| "example.com"; "mail.net"; "corp.org"; "inbox.io"; "db.edu";
       "cloud.dev"; "shop.biz"; "web.co" |]

  (* Deterministic 32-byte email-ish string: realistic shared prefixes
     (names, domains) with a numeric discriminator, padded to fixed width
     like the paper's 32-byte storage. *)
  let email i =
    let h = rand_int i in
    let name = names.(h mod Array.length names) in
    let domain = domains.((h / 97) mod Array.length domains) in
    let s = Printf.sprintf "%s.%07d@%s" name (i mod 10_000_000) domain in
    let n = String.length s in
    if n >= 32 then String.sub s 0 32 else s ^ String.make (32 - n) '_'
end

let int_key_of space i =
  match space with
  | Mono_int | Mono_hc -> Keys.mono_int i
  | Rand_int -> Keys.rand_int i
  | Email -> invalid_arg "Workload.int_key_of: Email keys are strings"

let email_key_of = Keys.email

let load_trace cfg space (conv : int -> 'k) : ('k * int) array =
  let arr = Array.init cfg.num_keys (fun i -> (conv i, i + 1)) in
  (match space with
  | Mono_int | Mono_hc -> () (* insert in ascending order *)
  | Rand_int | Email ->
      (* rand_int conversion already scrambles; emails are inserted in
         trace order, which the scramble also randomizes *)
      ());
  arr

let ops_trace cfg space mix ~tid ~nthreads (conv : int -> 'k) : 'k op array =
  ignore space;
  let rng =
    Bw_util.Rng.create
      ~seed:(Int64.add cfg.seed (Int64.of_int ((tid + 1) * 7919)))
  in
  let zipf = Bw_util.Zipf.create ~theta:cfg.theta ~n:cfg.num_keys () in
  let existing () = conv (Bw_util.Zipf.sample_scrambled zipf rng) in
  (* fresh keys for inserts: beyond the loaded range, partitioned by thread
     so concurrent inserts never collide on the same key *)
  let next_fresh = ref (cfg.num_keys + tid) in
  let fresh () =
    let i = !next_fresh in
    next_fresh := i + nthreads;
    conv i
  in
  let n = cfg.num_ops / nthreads in
  Array.init n (fun j ->
      match mix with
      | Insert_only -> Insert (fresh (), j + 1)
      | Read_only -> Read (existing ())
      | Read_update ->
          if Bw_util.Rng.next_bool rng then Read (existing ())
          else Update (existing (), j + 1)
      | Scan_insert ->
          if Bw_util.Rng.next_int rng 100 < 5 then Insert (fresh (), j + 1)
          else Scan (existing (), 1 + Bw_util.Rng.next_int rng cfg.scan_max))

module Hc = struct
  type t = { clock : int Atomic.t; shift : int }

  let create ~nthreads =
    let shift =
      let rec bits n acc = if n <= 1 then acc else bits (n lsr 1) (acc + 1) in
      max 1 (bits (nthreads - 1) 0 + 1)
    in
    { clock = Atomic.make 0; shift }

  let next t ~tid =
    let c = Atomic.fetch_and_add t.clock 1 in
    (c lsl t.shift) lor tid
end

module Trace_io = struct
  let render_op string_of_key = function
    | Insert (k, v) -> Printf.sprintf "I %s %d" (string_of_key k) v
    | Read k -> Printf.sprintf "R %s" (string_of_key k)
    | Update (k, v) -> Printf.sprintf "U %s %d" (string_of_key k) v
    | Scan (k, n) -> Printf.sprintf "S %s %d" (string_of_key k) n

  let parse_op key_of_string line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "I"; k; v ] -> Insert (key_of_string k, int_of_string v)
    | [ "R"; k ] -> Read (key_of_string k)
    | [ "U"; k; v ] -> Update (key_of_string k, int_of_string v)
    | [ "S"; k; n ] -> Scan (key_of_string k, int_of_string n)
    | _ -> failwith ("Workload.Trace_io: malformed line: " ^ line)

  let save string_of_key path ops =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
    Array.iter
      (fun op ->
        output_string oc (render_op string_of_key op);
        output_char oc '\n')
      ops

  let load key_of_string path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let ops = ref [] in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           ops := parse_op key_of_string line :: !ops
       done
     with End_of_file -> ());
    Array.of_list (List.rev !ops)

  let hex s =
    String.concat "" (List.init (String.length s)
                        (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

  let unhex h =
    if String.length h mod 2 <> 0 then failwith "Workload.Trace_io: odd hex";
    String.init (String.length h / 2) (fun i ->
        Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

  let save_int path ops = save string_of_int path ops
  let load_int path = load int_of_string path
  let save_string path ops = save hex path ops
  let load_string path = load unhex path
end
