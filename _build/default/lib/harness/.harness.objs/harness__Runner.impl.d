lib/harness/runner.ml: Array Atomic Bw_util Domain List Printf Unix Workload
