lib/harness/drivers.ml: Art_olc Btree_olc Bwtree Index_iface Int_key Int_value List Masstree Runner Skiplist String_key
