examples/persistence.ml: Bw_util Bwtree Index_iface List Pagestore Printf
