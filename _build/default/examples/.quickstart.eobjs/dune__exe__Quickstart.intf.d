examples/quickstart.mli:
