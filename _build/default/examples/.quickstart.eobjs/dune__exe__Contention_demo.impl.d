examples/contention_demo.ml: Bwtree Domain Index_iface List Printf Unix Workload
