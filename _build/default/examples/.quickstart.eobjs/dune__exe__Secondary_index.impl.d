examples/secondary_index.ml: Array Bw_util Bwtree Index_iface List Printf
