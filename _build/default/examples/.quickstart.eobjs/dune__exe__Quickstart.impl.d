examples/quickstart.ml: Bwtree Domain Index_iface List Printf String
