examples/order_engine.ml: Array Atomic Bw_util Bwtree Domain Index_iface Int64 List Pagestore Printf String Unix
