examples/order_engine.mli:
