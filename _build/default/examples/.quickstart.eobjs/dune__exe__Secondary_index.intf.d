examples/secondary_index.mli:
