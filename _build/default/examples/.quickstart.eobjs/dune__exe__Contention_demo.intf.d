examples/contention_demo.mli:
