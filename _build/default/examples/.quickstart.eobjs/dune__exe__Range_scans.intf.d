examples/range_scans.mli:
