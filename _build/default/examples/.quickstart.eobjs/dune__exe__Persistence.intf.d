examples/persistence.mli:
