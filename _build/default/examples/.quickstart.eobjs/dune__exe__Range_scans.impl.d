examples/range_scans.ml: Atomic Bw_util Bwtree Domain Index_iface List Printf
