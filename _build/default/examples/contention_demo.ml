(* The §6.2 high-contention scenario in miniature: every worker appends
   monotonically increasing keys (a shared clock tagged with the thread
   id, standing in for RDTSC), so all inserts fight over the delta chain
   of the rightmost leaf. The Bw-Tree stays correct — the failed-CaS abort
   counters show the price of lock-freedom under contention.

   Run with: dune exec examples/contention_demo.exe *)

module Tree = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)

let run ~label ~nthreads ~per_thread keygen =
  let t = Tree.create () in
  Tree.start_gc_thread t ();
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init nthreads (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to per_thread do
              let k = keygen ~tid i in
              ignore (Tree.insert t ~tid k i)
            done;
            Tree.quiesce t ~tid))
  in
  List.iter Domain.join workers;
  let dt = Unix.gettimeofday () -. t0 in
  Tree.stop_gc_thread t;
  Tree.verify_invariants t;
  let os = Tree.op_stats t in
  let abort_rate =
    100.0 *. float_of_int os.restarts /. float_of_int os.inserts
  in
  Printf.printf
    "%-16s %d threads x %d inserts: %6.2f s, %7.3f Mops/s | failed CaS %6d \
     | abort rate %5.1f%% | splits %d\n%!"
    label nthreads per_thread dt
    (float_of_int (nthreads * per_thread) /. dt /. 1e6)
    os.failed_cas abort_rate os.splits;
  assert (Tree.cardinal t = nthreads * per_thread)

let () =
  let nthreads = 8 and per_thread = 20_000 in
  (* disjoint key ranges: essentially no contention *)
  run ~label:"disjoint" ~nthreads ~per_thread (fun ~tid i ->
      (tid * 10_000_000) + i);
  (* the right-edge storm: a shared monotonic clock, thread id in the low
     bits — every insert targets the same leaf *)
  let hc = Workload.Hc.create ~nthreads in
  run ~label:"high-contention" ~nthreads ~per_thread (fun ~tid _ ->
      Workload.Hc.next hc ~tid);
  print_endline
    "note: under high contention every thread hammers the rightmost leaf's \
     delta chain; failed CaS and aborts rise with true core parallelism \
     (on a single-core host only scheduler preemption interleaves the \
     threads) while correctness is preserved — the effect the paper \
     measures in Fig. 16/17 and Table 2."
