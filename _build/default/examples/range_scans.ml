(* Range scans and ordered iteration: the YCSB-E-style access pattern
   (§5.1) and the forward/backward iterator protocol (§3.2, Appendix C).
   Demonstrates cursor pagination and reverse "ORDER BY ... DESC" reads
   over an OpenBw-Tree keyed by event timestamp.

   Run with: dune exec examples/range_scans.exe *)

module Tree = Bwtree.Make (Index_iface.Int_key) (Index_iface.Int_value)

let () =
  let t = Tree.create () in
  let rng = Bw_util.Rng.create ~seed:7L in

  (* events arrive with (mostly) increasing timestamps; values point at
     event records *)
  let n = 100_000 in
  let ts = ref 0 in
  for ev = 0 to n - 1 do
    ts := !ts + 1 + Bw_util.Rng.next_int rng 5;
    assert (Tree.insert t !ts ev)
  done;
  Printf.printf "loaded %d events, last timestamp %d\n" n !ts;

  (* page through a time window, 100 events per page, resuming each page
     from a cursor — the standard DBMS iterator usage *)
  let window_start = !ts / 2 in
  let page_size = 100 in
  let cursor = ref window_start in
  let pages = ref 0 and total = ref 0 in
  let continue_ = ref true in
  while !continue_ && !pages < 5 do
    let page = Tree.scan t ~n:page_size !cursor in
    incr pages;
    total := !total + List.length page;
    match List.rev page with
    | [] -> continue_ := false
    | (last_key, _) :: _ -> cursor := last_key + 1
  done;
  Printf.printf "paged %d events in %d pages from t=%d\n" !total !pages
    window_start;

  (* the newest 10 events: backward iteration from the end *)
  let it = Tree.Iterator.seek t max_int in
  Tree.Iterator.prev it;
  Printf.printf "newest events:";
  for _ = 1 to 10 do
    (match Tree.Iterator.current it with
    | Some (ts, ev) -> Printf.printf " %d@%d" ev ts
    | None -> ());
    Tree.Iterator.prev it
  done;
  print_newline ();

  (* scans are consistent while writers run: each scan sees a sorted
     snapshot-ish view built from per-node private copies (§3.2) *)
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Bw_util.Rng.create ~seed:99L in
        while not (Atomic.get stop) do
          let k = Bw_util.Rng.next_int rng (!ts * 2) in
          ignore (Tree.insert t ~tid:1 k 0);
          ignore (Tree.delete t ~tid:1 k 0)
        done;
        Tree.quiesce t ~tid:1)
  in
  let sorted = ref true in
  for i = 0 to 199 do
    let page = Tree.scan t ~tid:0 ~n:48 (i * 997) in
    let keys = List.map fst page in
    if List.sort compare keys <> keys then sorted := false
  done;
  Atomic.set stop true;
  Domain.join writer;
  Printf.printf "200 concurrent scans stayed sorted: %b\n" !sorted;
  Tree.verify_invariants t
